"""The concurrency checker: the object engines report events to.

A :class:`ConcurrencyChecker` is handed to an engine (``check=`` on
:class:`~repro.sim.mta_engine.MTAEngine` / :class:`~repro.sim.smp_engine.SMPEngine`
or on the kernel entry points in ``lists.programs`` / ``graphs.programs``)
and observes the exact op stream the engine executes.  It runs two
cooperating passes over that stream:

1. the dynamic happens-before race detector (:mod:`repro.analysis.races`),
   fed by data accesses at issue time and sync accesses at *semantic*
   time (the cycle a word fills/drains, the serialized FA order, the
   barrier release);
2. a lint pass — address-bounds checks against the kernel's
   :class:`~repro.arch.memory.AddressSpace`, sync/counter-word
   initialization checks, barrier bookkeeping, phase-marker hygiene,
   and (from the engine's blocked-thread inventory at deadlock time)
   deadlock and barrier-mismatch diagnosis.

One checker instance spans a whole kernel invocation, including
kernels that run several engines back to back (the MTA list-ranking
phases); engine boundaries are treated as global barriers.  Call
:meth:`report` when done — it finalizes and returns an
:class:`~repro.analysis.findings.AnalysisReport`.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .findings import AnalysisReport, Finding
from .races import RaceDetector

#: Tags understood by the data-access pass (module-local copies so the
#: analyzer stays decoupled from the engine modules).
_WRITE_TAGS = ("S",)
_READ_TAGS = ("L", "LD")
_SYNC_TAGS = ("SLE", "SLF", "SSF")
_MAX_BOUNDS_PER_RUN = 4


class ConcurrencyChecker:
    """Collects engine events and produces an :class:`AnalysisReport`.

    Parameters
    ----------
    strict:
        When true, ``allow_racy`` annotations are ignored and every
        race is reported.  Default: annotated regions are suppressed
        (counted in ``stats["suppressed_races"]``).
    program:
        Optional program label stamped onto every finding.
    """

    def __init__(self, *, strict: bool = False, program: str = "") -> None:
        self.strict = strict
        self.program = program
        self.races = RaceDetector()
        self.findings: List[Finding] = []
        # allow_racy regions: (lo, hi, reason), hi exclusive
        self._allowed: List[Tuple[int, int, str]] = []
        # bounds intervals from the AddressSpace: sorted (lo, hi, name)
        self._bounds: Optional[List[Tuple[int, int, str]]] = None
        self._bounds_lo: List[int] = []
        # persistent across runs
        self._counters_init: set[int] = set()
        self._stored: set[int] = set()
        self._fa_warned: set[int] = set()
        self._fa_counts: Dict[int, int] = {}
        self._runs: List[str] = []
        self._total_ops = 0
        self._threads_seen: set[Tuple[int, int]] = set()
        # per-run state
        self._run_index = -1
        self._run_open = False
        self._run_name = ""
        self._engine_kind = ""
        self._p = 0
        self._op_index: Dict[int, int] = {}
        self._registered_barriers: Dict[Any, int] = {}
        self._barrier_arrivals: Dict[Any, int] = {}
        self._filled_words: set[int] = set()
        self._init_full: set[int] = set()
        self._phase_counts: Dict[Tuple[int, str], int] = {}
        self._bounds_reported = 0
        self._finalized = False

    # -- wiring --------------------------------------------------------------

    def attach_engine(self, kind: str, p: int) -> None:
        """Called from an engine constructor; opens a new run context."""
        if self._run_open:  # engine abandoned without run(); close it out
            self.end_run([])
        self._run_index += 1
        self._run_open = True
        self._run_name = f"{kind}#{self._run_index}"
        self._engine_kind = kind
        self._p = p
        self._op_index = {}
        self._registered_barriers = {}
        self._barrier_arrivals = {}
        self._filled_words = set()
        self._init_full = set()
        self._phase_counts = {}
        self._bounds_reported = 0

    def set_address_space(self, space: Any) -> None:
        """Enable bounds checking against ``space`` (an AddressSpace)."""
        intervals = sorted(
            (a.base, a.base + a.length, a.name) for a in space.allocations()
        )
        self._bounds = intervals
        self._bounds_lo = [lo for lo, _, _ in intervals]

    def allow_racy(self, lo: int, hi: int, reason: str) -> None:
        """Mark ``[lo, hi)`` as intentionally racy (suppressed unless strict)."""
        self._allowed.append((int(lo), int(hi), reason))

    # -- engine init hooks ---------------------------------------------------

    def start_run(self, name: str) -> None:
        if name:
            self._run_name = name
        self._runs.append(self._run_name)

    def register_barrier(self, bid: Any, need: int) -> None:
        self._registered_barriers[bid] = need

    def init_full(self, addr: int) -> None:
        self._init_full.add(addr)
        self._filled_words.add(addr)

    def init_counter(self, addr: int) -> None:
        self._counters_init.add(addr)

    # -- per-op hooks --------------------------------------------------------

    def on_op(self, tid: int, op: Sequence[Any]) -> None:
        """Issue-time hook: every op the engine dispatches for ``tid``."""
        idx = self._op_index.get(tid, 0)
        self._op_index[tid] = idx + 1
        self._total_ops += 1
        key = (self._run_index, tid)
        self._threads_seen.add(key)
        tag = op[0]
        ctx = {"run": self._run_name}
        if tag in _WRITE_TAGS:
            addr = op[1]
            self._check_bounds(tid, idx, addr, tag)
            self._stored.add(addr)
            self.races.write(key, addr, tag, idx, ctx)
        elif tag in _READ_TAGS:
            addr = op[1]
            self._check_bounds(tid, idx, addr, tag)
            self.races.read(key, addr, tag, idx, ctx)
        elif tag == "FA":
            addr = op[1]
            self._check_bounds(tid, idx, addr, tag)
            self._fa_counts[addr] = self._fa_counts.get(addr, 0) + 1
            if (
                addr not in self._counters_init
                and addr not in self._stored
                and addr not in self._fa_warned
            ):
                self._fa_warned.add(addr)
                self.findings.append(
                    Finding(
                        check="fa-uninit",
                        severity="warning",
                        message=(
                            f"FA on address {addr} which was never initialized "
                            f"via set_counter or a prior store"
                        ),
                        run=self._run_name,
                        thread=tid,
                        op_index=idx,
                        address=addr,
                    )
                )
            # FA serialization: acquire/release the cell clock around the RMW.
            self.races.acquire(key, ("fa", addr))
            self.races.write(key, addr, tag, idx, ctx)
            self.races.release(key, ("fa", addr))
        elif tag in _SYNC_TAGS:
            addr = op[1]
            self._check_bounds(tid, idx, addr, tag)
            if tag == "SSF":
                self._stored.add(addr)
        elif tag == "B":
            self._barrier_arrivals[op[1]] = self._barrier_arrivals.get(op[1], 0) + 1

    def on_phase(self, tid: int, name: str) -> None:
        if not name:
            self.findings.append(
                Finding(
                    check="phase-hygiene",
                    severity="warning",
                    message="empty phase-marker name",
                    run=self._run_name,
                    thread=tid,
                    op_index=self._op_index.get(tid, 0),
                )
            )
            return
        count = self._phase_counts.get((tid, name), 0) + 1
        self._phase_counts[(tid, name)] = count
        if count == 2:  # report once per (thread, name)
            self.findings.append(
                Finding(
                    check="phase-hygiene",
                    severity="warning",
                    message=(
                        f"phase marker {name!r} emitted more than once by "
                        f"thread {tid} in one run; phase slices will overlap"
                    ),
                    run=self._run_name,
                    thread=tid,
                    op_index=self._op_index.get(tid, 0),
                )
            )

    # -- semantic-time sync hooks --------------------------------------------

    def on_sync_write(self, tid: int, addr: int) -> None:
        """A word actually fills (successful SSF)."""
        key = (self._run_index, tid)
        self._filled_words.add(addr)
        obj = ("fe", addr)
        self.races.acquire(key, obj)
        self.races.write(key, addr, "SSF", self._op_index.get(tid, 0),
                         {"run": self._run_name})
        self.races.release(key, obj)

    def on_sync_read(self, tid: int, addr: int, consume: bool) -> None:
        """A word is drained (SLE) or peeked (SLF) by ``tid``."""
        key = (self._run_index, tid)
        obj = ("fe", addr)
        self.races.acquire(key, obj)
        self.races.read(key, addr, "SLE" if consume else "SLF",
                        self._op_index.get(tid, 0), {"run": self._run_name})
        if consume:
            # draining re-enables the next SSF: the drain happens-before it
            self.races.release(key, obj)

    def on_barrier_release(self, bid: Any, tids: Sequence[int]) -> None:
        keys = [(self._run_index, t) for t in tids]
        self.races.barrier_release((self._run_index, bid), keys)

    # -- run teardown --------------------------------------------------------

    def end_run(self, blocked: Sequence[Dict[str, Any]]) -> None:
        """Close the current run; ``blocked`` is the engine's inventory of
        stuck threads when it detected a deadlock (empty on a clean exit)."""
        if not self._run_open:
            return
        self._run_open = False
        seen: set[Tuple[str, Any]] = set()
        for row in blocked:
            state = row.get("state", "")
            if state == "wait-barrier":
                bid = row.get("barrier")
                if ("barrier", bid) in seen:
                    continue
                seen.add(("barrier", bid))
                need = row.get("need", self._registered_barriers.get(bid))
                arrived = row.get("arrived", self._barrier_arrivals.get(bid))
                self.findings.append(
                    Finding(
                        check="barrier-mismatch",
                        severity="error",
                        message=(
                            f"barrier {bid!r} released never: {arrived} "
                            f"arrival(s) but {need} participant(s) required"
                        ),
                        run=self._run_name,
                        thread=row.get("tid"),
                        witness={"barrier": str(bid), "arrived": arrived,
                                 "need": need},
                    )
                )
            elif state == "wait-full":
                addr = row.get("addr")
                if ("full", addr) in seen:
                    continue
                seen.add(("full", addr))
                if addr not in self._filled_words and addr not in self._init_full:
                    self.findings.append(
                        Finding(
                            check="sync-init",
                            severity="error",
                            message=(
                                f"thread {row.get('tid')} waits for word {addr} "
                                f"to fill, but it was never set_full and no "
                                f"producer ever fills it"
                            ),
                            run=self._run_name,
                            thread=row.get("tid"),
                            address=addr,
                            witness={"state": state},
                        )
                    )
                else:
                    self.findings.append(
                        Finding(
                            check="deadlock",
                            severity="error",
                            message=(
                                f"thread {row.get('tid')} blocked forever "
                                f"waiting for word {addr} to fill"
                            ),
                            run=self._run_name,
                            thread=row.get("tid"),
                            address=addr,
                            witness={"state": state},
                        )
                    )
            elif state == "wait-empty":
                addr = row.get("addr")
                if ("empty", addr) in seen:
                    continue
                seen.add(("empty", addr))
                detail = (
                    " (the word was initialized full via set_full)"
                    if addr in self._init_full
                    else ""
                )
                self.findings.append(
                    Finding(
                        check="deadlock",
                        severity="error",
                        message=(
                            f"thread {row.get('tid')} blocked forever on SSF: "
                            f"word {addr} never empties{detail}"
                        ),
                        run=self._run_name,
                        thread=row.get("tid"),
                        address=addr,
                        witness={"state": state, "set_full": addr in self._init_full},
                    )
                )
            else:
                self.findings.append(
                    Finding(
                        check="deadlock",
                        severity="error",
                        message=(
                            f"thread {row.get('tid')} stuck in state "
                            f"{state!r} at end of run"
                        ),
                        run=self._run_name,
                        thread=row.get("tid"),
                        witness=dict(row),
                    )
                )
        for bid, need in self._registered_barriers.items():
            if self._barrier_arrivals.get(bid, 0) == 0:
                self.findings.append(
                    Finding(
                        check="barrier-unused",
                        severity="warning",
                        message=(
                            f"barrier {bid!r} registered for {need} "
                            f"participant(s) but never reached"
                        ),
                        run=self._run_name,
                        witness={"barrier": str(bid), "need": need},
                    )
                )
        self.races.end_run()

    def note_abort(self, kind: str, message: str) -> None:
        """Driver hook: the run was cut short by the watchdog / an error."""
        self._run_open = False
        self.findings.append(
            Finding(
                check="watchdog",
                severity="error",
                message=f"{kind}: {message}",
                run=self._run_name,
            )
        )

    # -- lint helpers --------------------------------------------------------

    def _check_bounds(self, tid: int, idx: int, addr: int, tag: str) -> None:
        if self._bounds is None or self._bounds_reported >= _MAX_BOUNDS_PER_RUN:
            return
        i = bisect.bisect_right(self._bounds_lo, addr) - 1
        if i >= 0:
            lo, hi, _name = self._bounds[i]
            if lo <= addr < hi:
                return
        self._bounds_reported += 1
        self.findings.append(
            Finding(
                check="bounds",
                severity="error",
                message=(
                    f"{tag} touches address {addr}, which is outside every "
                    f"AddressSpace allocation"
                ),
                run=self._run_name,
                thread=tid,
                op_index=idx,
                address=addr,
                witness={"op": tag},
            )
        )

    def _race_allowed(self, f: Finding) -> Optional[str]:
        if f.address is None:
            return None
        for lo, hi, reason in self._allowed:
            if lo <= f.address < hi:
                return reason
        return None

    # -- finalize ------------------------------------------------------------

    def report(self) -> AnalysisReport:
        """Finalize (idempotent) and return the analysis report."""
        if self._run_open:
            self.end_run([])
        if not self._finalized:
            self._finalized = True
            suppressed = 0
            reasons: List[str] = []
            merged: List[Finding] = []
            for f in self.findings + self.races.findings:
                if f.check == "race" and not self.strict:
                    reason = self._race_allowed(f)
                    if reason is not None:
                        suppressed += 1
                        if reason not in reasons:
                            reasons.append(reason)
                        continue
                f.program = f.program or self.program
                merged.append(f)
            # deterministic order + exact-duplicate removal
            merged.sort(key=lambda f: f.sort_key())
            unique: List[Finding] = []
            seen: set[str] = set()
            for f in merged:
                sig = repr(f.to_dict())
                if sig not in seen:
                    seen.add(sig)
                    unique.append(f)
            from ..obs import fa_concentration

            self._final = AnalysisReport(
                findings=unique,
                stats={
                    "program": self.program,
                    "strict": self.strict,
                    "runs": list(self._runs),
                    "ops": self._total_ops,
                    "threads": len(self._threads_seen),
                    "suppressed_races": suppressed,
                    "suppression_reasons": reasons,
                    "fa": fa_concentration(self._fa_counts),
                },
            )
        return self._final
