"""Concurrency-correctness analysis for simulated ISA programs.

Two cooperating passes over the op streams the cycle engines execute:
a dynamic happens-before race detector (vector clocks with sync edges
from barriers, full/empty-bit pairs, and fetch-add serialization) and
a lint pass (deadlock / barrier-mismatch / sync-initialization /
address-bounds / phase-hygiene diagnosis).  See ``docs/ANALYSIS.md``.

A third, static pass (:mod:`repro.analysis.static`, ``repro lint``)
checks the repo's *own* source against its invariants — determinism,
state contracts, hook/engine discipline, program-generator shape — and
reports through the same :class:`Finding` machinery.
"""

from __future__ import annotations

from .checker import ConcurrencyChecker
from .driver import analyze_suite, analyze_workload
from .findings import AnalysisReport, Finding, dump_jsonl, load_jsonl
from .races import RaceDetector
from .static import collect_state_baseline, lint_repo
from .vclock import VClock

__all__ = [
    "AnalysisReport",
    "ConcurrencyChecker",
    "Finding",
    "RaceDetector",
    "VClock",
    "analyze_suite",
    "analyze_workload",
    "collect_state_baseline",
    "dump_jsonl",
    "lint_repo",
    "load_jsonl",
]
