"""Program-generator shape lint over the ISA generators in graphs//lists/.

Thread programs are Python generators yielding op tuples
(:mod:`repro.sim.isa`).  Three shape bugs slip through runtime testing
because they only bite under a schedule or input the tests didn't hit:

* a barrier yielded in one branch of an ``if`` inside a loop body but
  not the other — threads that take different branches arrive different
  numbers of times and the run deadlocks (or worse, releases early on a
  later iteration's arrivals);
* a raw op tuple with the wrong operand count — the engines dispatch on
  the tag and unpack positionally, so ``("FA", addr)`` is an unpack
  error at simulation time (or a silently wrong ``inc``) far from the
  generator that built it;
* a ``run_block`` containing value-returning/synchronizing ops — ``VR``
  blocks are defined as straight-line ``C``/``L``/``LD``/``S`` runs, and
  the vectorized fast tier batch-executes them on that assumption.

Intentional asymmetric barriers (e.g. a leader-only release protocol)
carry ``# allow_shape: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding
from .base import ModuleContext, Rule, call_name

#: Full tuple length (tag included) for every opcode.
OP_ARITY = {
    "C": 2,
    "L": 2,
    "LD": 2,
    "S": 2,
    "FA": 3,
    "SLE": 2,
    "SLF": 2,
    "SSF": 3,
    "GV": 2,
    "PV": 3,
    "B": 2,
    "P": 2,
    "VR": 2,
}

#: Tags legal inside a ``run_block`` (straight-line, vectorizable).
PLAIN_TAGS = {"C", "L", "LD", "S"}

#: isa helper name -> the tag it builds.
_HELPER_TAGS = {
    "compute": "C",
    "load": "L",
    "load_dep": "LD",
    "store": "S",
    "fetch_add": "FA",
    "sync_load_consume": "SLE",
    "sync_load_peek": "SLF",
    "sync_store": "SSF",
    "get_value": "GV",
    "put_value": "PV",
    "barrier": "B",
    "phase": "P",
    "run_block": "VR",
}

GENERATOR_PACKAGES = ("repro.graphs", "repro.lists")


def _yielded_tag(node: ast.expr) -> Optional[str]:
    """The opcode tag of a yielded expression, when statically known."""
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value if first.value in OP_ARITY else None
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is not None:
            return _HELPER_TAGS.get(name.rpartition(".")[2])
    return None


class _ShapeRule(Rule):
    family = "shape"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*GENERATOR_PACKAGES)


class GenOpArityRule(_ShapeRule):
    """Raw op tuples must match the known opcode arities."""

    id = "gen-op-arity"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if not (isinstance(value, ast.Tuple) and value.elts):
                continue
            first = value.elts[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            tag = first.value
            arity = OP_ARITY.get(tag)
            if arity is None:
                yield self.finding(
                    ctx,
                    value,
                    f"yielded raw tuple has unknown opcode tag {tag!r}; the "
                    f"engines dispatch on the tag and would fail at simulation "
                    f"time",
                    witness={"tag": tag},
                )
            elif any(isinstance(e, ast.Starred) for e in value.elts):
                continue  # splat — length not statically known
            elif len(value.elts) != arity:
                yield self.finding(
                    ctx,
                    value,
                    f"raw {tag!r} tuple has {len(value.elts)} elements, opcode "
                    f"takes {arity} (tag + {arity - 1} operand(s)); prefer the "
                    f"repro.sim.isa constructor which validates operands",
                    witness={"tag": tag, "got": len(value.elts), "want": arity},
                )


class GenBarrierBalanceRule(_ShapeRule):
    """Barrier yields must be balanced across branches of a loop body.

    For every ``if`` statement inside a loop inside a generator, the
    barrier-yield count of the true branch must equal the false
    branch's.  Threads running the same generator with different data
    otherwise arrive at the barrier different numbers of times per
    iteration, which is a deadlock (or an early release) by
    construction.
    """

    id = "gen-barrier-balance"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in ast.walk(fn)
            ):
                continue
            for loop in ast.walk(fn):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for stmt in loop.body:
                    yield from self._check_branches(ctx, stmt)

    def _check_branches(self, ctx: ModuleContext, stmt: ast.stmt) -> Iterator[Finding]:
        # walk the loop body's statement tree, stopping at nested loops
        # (their iteration counts differ legitimately) and nested defs
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            n_body = sum(self._barrier_count(s) for s in stmt.body)
            n_else = sum(self._barrier_count(s) for s in stmt.orelse)
            if n_body != n_else:
                yield self.finding(
                    ctx,
                    stmt,
                    f"barrier yield in only one branch of this if "
                    f"({n_body} vs {n_else}); threads taking different "
                    f"branches arrive unequal numbers of times and the "
                    f"barrier deadlocks",
                    witness={"body": n_body, "orelse": n_else},
                )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield from self._check_branches(ctx, child)

    def _barrier_count(self, stmt: ast.stmt) -> int:
        count = 0
        for node in ast.walk(stmt):
            if isinstance(node, ast.Yield) and node.value is not None:
                if _yielded_tag(node.value) == "B":
                    count += 1
        return count


class GenRunBlockShapeRule(_ShapeRule):
    """``run_block`` contents must be straight-line plain ops."""

    id = "gen-runblock-shape"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.rpartition(".")[2] != "run_block":
                continue
            if not node.args:
                continue
            ops = node.args[0]
            if not isinstance(ops, (ast.List, ast.Tuple)):
                continue  # dynamic sequence — checked at runtime by OpBlock
            for elt in ops.elts:
                tag = self._element_tag(elt)
                if tag is not None and tag not in PLAIN_TAGS:
                    yield self.finding(
                        ctx,
                        elt,
                        f"run_block contains a {tag!r} op; VR blocks are "
                        f"straight-line C/L/LD/S only (nothing that returns a "
                        f"value, synchronizes, or marks a phase)",
                        witness={"tag": tag},
                    )

    def _element_tag(self, elt: ast.expr) -> Optional[str]:
        if isinstance(elt, ast.Tuple) and elt.elts:
            first = elt.elts[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return first.value
        if isinstance(elt, ast.Call):
            name = call_name(elt)
            if name is not None:
                return _HELPER_TAGS.get(name.rpartition(".")[2])
        return None


SHAPE_RULES = (
    GenOpArityRule(),
    GenBarrierBalanceRule(),
    GenRunBlockShapeRule(),
)
