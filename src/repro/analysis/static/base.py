"""Shared plumbing for the static rules: module contexts and suppressions.

Every rule works on a :class:`ModuleContext` — one parsed source file
plus its repo-relative path, dotted module name, and the suppression
comments found in it.  Rules yield :class:`~repro.analysis.findings.Finding`
records (the same machinery the dynamic concurrency analyzer uses), and
the driver applies suppressions the way the dynamic checker applies
``allow_racy``: a suppressed finding disappears from the default report,
is counted in ``stats``, and resurfaces under ``--strict``.

Suppression comments are one-per-line markers with a mandatory reason::

    t0 = time.perf_counter()   # allow_nondet: wall-clock only feeds the log line
    self.gen: Generator        # nostate: rebuilt by checkpoint replay
    eng = MTAEngine(p=4)       # allow_direct_engine: this bench measures dispatch
    yield maybe_barrier()      # allow_shape: uniform shared-flag decision
    def on_custom(self): ...   # allow_hook: adapter method, not a bus event

A marker suppresses findings of its family on the same physical line
(the line the finding points at).  A marker without a reason is itself
reported — silent suppressions are how invariants rot.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..findings import Finding

#: marker -> the rule family it suppresses (see Rule.family).
SUPPRESSION_MARKERS = {
    "allow_nondet": "determinism",
    "nostate": "state",
    "allow_direct_engine": "discipline",
    "allow_hook": "discipline",
    "allow_shape": "shape",
}

_MARKER_RE = re.compile(
    r"#\s*(" + "|".join(SUPPRESSION_MARKERS) + r")\s*:?\s*(.*)$"
)


@dataclass
class ModuleContext:
    """One source file as seen by every rule."""

    #: Repo-relative path with forward slashes (stable across hosts).
    path: str
    #: Dotted module name (``repro.sim.kernel``, ``benchmarks.bench_msf``).
    module: str
    source: str
    tree: ast.Module
    #: line number -> (marker, reason)
    suppressions: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, module: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        suppressions: Dict[int, Tuple[str, str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            m = _MARKER_RE.search(line)
            if m:
                suppressions[lineno] = (m.group(1), m.group(2).strip())
        return cls(path, module, source, tree, suppressions)

    def in_package(self, *packages: str) -> bool:
        """True when the module lives in (or is) one of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def suppression_at(self, line: int, family: str) -> Optional[str]:
        """The reason string if ``line`` carries this family's marker.

        A marker with no reason does not suppress (returns None) — the
        underlying finding surfaces, which is how reasonless markers
        get "reported".
        """
        entry = self.suppressions.get(line)
        if entry is None:
            return None
        marker, reason = entry
        if SUPPRESSION_MARKERS[marker] != family:
            return None
        return reason or None


class Rule:
    """One static rule: a stable id, a family, and an AST pass."""

    #: Stable rule id; also the ``check`` field of every finding it emits.
    id: str = ""
    #: Suppression family (key space of :data:`SUPPRESSION_MARKERS` values).
    family: str = ""
    severity: str = "error"

    def check_ids(self) -> Tuple[str, ...]:
        """Check ids this rule can emit (umbrella rules override)."""
        return (self.id,)

    def applies(self, ctx: ModuleContext) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        *,
        severity: Optional[str] = None,
        witness: Optional[dict] = None,
    ) -> Finding:
        return Finding(
            check=self.id,
            severity=severity or self.severity,
            message=message,
            file=ctx.path,
            line=getattr(node, "lineno", None),
            witness=witness or {},
        )


def walk_scoped(node: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but does not descend into nested function/class
    definitions — for per-scope passes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def call_name(node: ast.Call) -> Optional[str]:
    """``foo`` for ``foo(...)``, ``mod.attr`` for ``mod.attr(...)`` (one
    level), else None."""
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        return f"{fn.value.id}.{fn.attr}"
    return None
