"""Driver for the static rules: file discovery, suppression, reporting.

``lint_repo()`` walks the repo's own sources (``src/repro`` plus the
top-level ``benchmarks/`` directory), runs every rule against each
parsed module, applies the family suppression markers the way the
dynamic checker applies ``allow_racy`` (suppressed findings move to
``stats`` unless ``strict``), and returns the same
:class:`~repro.analysis.findings.AnalysisReport` the dynamic analyzer
produces — so ``repro analyze --jsonl`` and ``repro lint --jsonl``
share one output schema by construction.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from ..findings import AnalysisReport, Finding
from .base import ModuleContext, Rule
from .determinism import DETERMINISM_RULES
from .discipline import DISCIPLINE_RULES
from .progshape import SHAPE_RULES
from .state_contract import StateContractRule, dump_baseline, load_baseline

#: Repo-relative path of the committed state-contract baseline.
STATE_BASELINE_PATH = os.path.join("tests", "golden", "state_contracts.json")


def repo_root() -> str:
    """The repository root, located from the installed package (src layout)."""
    import repro

    pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))  # .../src/repro
    return os.path.dirname(os.path.dirname(pkg_dir))


def default_rules(
    state_baseline: Optional[Dict[str, dict]] = None,
) -> Tuple[Rule, ...]:
    """Fresh rule instances (the state rule accumulates per-run state)."""
    return (
        *DETERMINISM_RULES,
        StateContractRule(baseline=state_baseline),
        *DISCIPLINE_RULES,
        *SHAPE_RULES,
    )


def _module_name(root: str, path: str) -> Optional[str]:
    """Dotted module name for ``path``, or None if it is not lintable."""
    rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
    if not rel.endswith(".py"):
        return None
    stem = rel[: -len(".py")]
    if stem.startswith("src/"):
        stem = stem[len("src/") :]
    parts = stem.split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or parts[0] not in ("repro", "benchmarks"):
        return None
    return ".".join(parts)


def iter_source_files(root: str, paths: Sequence[str] = ()) -> List[str]:
    """Lintable files under ``paths`` (default: src/repro + benchmarks)."""
    if not paths:
        paths = [os.path.join(root, "src", "repro"), os.path.join(root, "benchmarks")]
    else:
        for p in paths:
            if not os.path.exists(p):
                raise ConfigurationError(f"lint path does not exist: {p}")
            if not os.path.isdir(p) and not p.endswith(".py"):
                raise ConfigurationError(f"lint path is not a directory or .py file: {p}")
    files: List[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        files.append(os.path.join(dirpath, fn))
        elif p.endswith(".py"):
            files.append(p)
    return files


def parse_modules(root: str, files: Iterable[str]) -> List[ModuleContext]:
    contexts: List[ModuleContext] = []
    for path in files:
        module = _module_name(root, path)
        if module is None:
            continue
        rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as f:
            source = f.read()
        contexts.append(ModuleContext.parse(rel, module, source))
    return contexts


def lint_modules(
    contexts: Iterable[ModuleContext],
    rules: Sequence[Rule],
    *,
    strict: bool = False,
    checks: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run ``rules`` over ``contexts`` and assemble one report.

    ``checks`` optionally restricts the report to specific rule ids or
    family names.  Suppression mirrors the dynamic checker's
    ``allow_racy``: a finding on a line carrying its family's marker
    (with a reason) is counted in ``stats``, not reported.  Under
    ``strict`` the suppressed findings surface as *warnings* — full
    visibility without failing the gate on accepted, annotated sites —
    so ``repro lint --strict`` still exits 0 on a clean tree.
    """
    wanted = set(checks) if checks else None
    if wanted is not None:
        valid: set = set()
        for rule in rules:
            valid.add(rule.family)
            valid.update(rule.check_ids())
        unknown = sorted(wanted - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(valid))}"
            )
    findings: List[Finding] = []
    suppressed = 0
    reasons: List[str] = []
    n_files = 0
    for ctx in contexts:
        n_files += 1
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for f in rule.run(ctx):
                if wanted is not None and not (
                    f.check in wanted or rule.family in wanted
                ):
                    continue
                if f.line is not None:
                    reason = ctx.suppression_at(f.line, rule.family)
                    if reason is not None:
                        suppressed += 1
                        if reason not in reasons:
                            reasons.append(reason)
                        if not strict:
                            continue
                        f.severity = "warning"
                        f.witness = dict(f.witness, suppressed=reason)
                findings.append(f)
    findings.sort(key=lambda f: f.sort_key())
    unique: List[Finding] = []
    seen: set = set()
    for f in findings:
        sig = repr(f.to_dict())
        if sig not in seen:
            seen.add(sig)
            unique.append(f)
    return AnalysisReport(
        findings=unique,
        stats={
            "files": n_files,
            "strict": strict,
            "suppressed_findings": suppressed,
            "suppression_reasons": reasons,
            "rules": sorted(r.id for r in rules),
        },
    )


def lint_repo(
    paths: Sequence[str] = (),
    *,
    strict: bool = False,
    checks: Optional[Sequence[str]] = None,
    state_baseline_path: Optional[str] = None,
    root: Optional[str] = None,
) -> AnalysisReport:
    """Lint the repo (or just ``paths``) and return the report.

    The state-contract baseline is read from ``state_baseline_path``
    (default ``tests/golden/state_contracts.json`` under the repo root);
    a missing baseline disables only the baseline-dependent checks.
    """
    root = root or repo_root()
    if state_baseline_path is None:
        state_baseline_path = os.path.join(root, STATE_BASELINE_PATH)
    baseline = None
    if os.path.exists(state_baseline_path):
        baseline = load_baseline(state_baseline_path)
    rules = default_rules(state_baseline=baseline)
    contexts = parse_modules(root, iter_source_files(root, paths))
    return lint_modules(contexts, rules, strict=strict, checks=checks)


def collect_state_baseline(
    paths: Sequence[str] = (), *, root: Optional[str] = None
) -> str:
    """Serialized state-contract baseline for the current tree."""
    root = root or repo_root()
    state_rule = StateContractRule(baseline=None)
    for ctx in parse_modules(root, iter_source_files(root, paths)):
        if state_rule.applies(ctx):
            for _ in state_rule.run(ctx):
                pass
    return dump_baseline(state_rule.observed)
