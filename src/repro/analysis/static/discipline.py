"""Hook/engine discipline: keep the runner and bus seams load-bearing.

Three invariants established by earlier PRs, previously enforced (if at
all) by ad-hoc runtime tests:

* Benchmarks route execution through the sweep runner (``Job`` →
  ``repro.core.run_jobs``), never by constructing machines/engines or
  calling ``simulate_*`` entry points directly — otherwise they bypass
  caching, sharding, and checkpointing, and their numbers stop being
  comparable with everything else.  This promotes the PR 2
  ``test_benchmarks_go_through_the_runner`` source grep into a real AST
  rule; the two benchmarks whose *measurement* is the direct path carry
  ``# allow_direct_engine: <reason>`` on those lines.
* Hooks speak only the 12 declared :data:`~repro.sim.hooks.HOOK_EVENTS`.
  A typo'd event name (``on_barier_release``) fails silently — the bus
  just never calls it — so both sides are checked: string event names
  passed to ``emit``/``listeners``, and public methods of ``*Hook``
  adapter classes.
* The kernel hot core (``kernel``/``fastpath``/``thread``/``isa``)
  imports no instrumentation (``repro.obs``, ``repro.analysis``).  The
  whole HookBus design exists so the interpreter loop pays one ``is not
  None`` per event; a direct import recouples the layers and drags
  tracer/checker code back into the per-op path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...sim.hooks import HOOK_EVENTS
from ..findings import Finding
from .base import ModuleContext, Rule, call_name

#: Machine/engine constructors that only the runner seam may call.
BANNED_CONSTRUCTORS = (
    "SMPMachine",
    "MTAMachine",
    "ClusterMachine",
    "SMPEngine",
    "MTAEngine",
)

#: Modules whose per-op interpreter loops must stay instrumentation-free.
HOT_LOOP_MODULES = (
    "repro.sim.kernel",
    "repro.sim.fastpath",
    "repro.sim.thread",
    "repro.sim.isa",
)

#: Packages a hot-loop module must not import from.
_INSTRUMENTATION_PACKAGES = ("repro.obs", "repro.analysis")

#: Non-event public names a ``*Hook`` adapter legitimately exposes.
_HOOK_NON_EVENTS = {"tracer", "checker", "bus", "hooks"}


class EngineDirectConstructRule(Rule):
    """Benchmarks must submit Jobs to the runner, not build engines."""

    id = "engine-direct-construct"
    family = "discipline"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("benchmarks")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            bare = name.rpartition(".")[2]
            if bare in BANNED_CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"benchmark constructs {bare} directly; submit a Job to "
                    f"repro.core.run_jobs so caching/sharding/checkpointing "
                    f"apply",
                    witness={"constructor": bare},
                )
            elif bare.startswith("simulate_"):
                yield self.finding(
                    ctx,
                    node,
                    f"benchmark calls {bare} directly; use the engine backends "
                    f"via the sweep runner",
                    witness={"constructor": bare},
                )


class HookEventUnknownRule(Rule):
    """Event names outside the declared HOOK_EVENTS set."""

    id = "hook-event-unknown"
    family = "discipline"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.ClassDef) and node.name.endswith("Hook"):
                yield from self._check_hook_class(ctx, node)

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr in ("emit", "listeners")):
            return
        if not node.args:
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        if arg.value not in HOOK_EVENTS:
            yield self.finding(
                ctx,
                node,
                f"{fn.attr}({arg.value!r}) names an event outside the declared "
                f"HOOK_EVENTS set; the bus would silently never deliver it",
                witness={"event": arg.value},
            )

    def _check_hook_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = item.name
            if name.startswith("_") or name in _HOOK_NON_EVENTS:
                continue
            if any(
                isinstance(dec, ast.Name) and dec.id in ("property", "staticmethod")
                or isinstance(dec, ast.Attribute)
                for dec in item.decorator_list
            ):
                continue
            if name not in HOOK_EVENTS:
                yield self.finding(
                    ctx,
                    item,
                    f"{cls.name}.{name} is public but is not one of the declared "
                    f"HOOK_EVENTS; the bus will never call it (typo'd event "
                    f"names fail silently)",
                    witness={"class": cls.name, "method": name},
                )


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute module named by ``from <level dots><target> import …``."""
    parts = module.split(".")
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class HotLoopImportRule(Rule):
    """No instrumentation imports in the kernel hot core."""

    id = "hot-loop-import"
    family = "discipline"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.module in HOT_LOOP_MODULES

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_target(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                target = node.module
                if node.level:
                    target = _resolve_relative(ctx.module, node.level, target)
                if target:
                    yield from self._check_target(ctx, node, target)

    def _check_target(
        self, ctx: ModuleContext, node: ast.AST, target: str
    ) -> Iterator[Finding]:
        for pkg in _INSTRUMENTATION_PACKAGES:
            if target == pkg or target.startswith(pkg + "."):
                yield self.finding(
                    ctx,
                    node,
                    f"hot-core module imports {target}; instrumentation reaches "
                    f"the kernel only through the HookBus seam",
                    witness={"import": target},
                )


DISCIPLINE_RULES = (
    EngineDirectConstructRule(),
    HookEventUnknownRule(),
    HotLoopImportRule(),
)
