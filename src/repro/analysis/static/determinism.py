"""Determinism lint: nondeterminism sources in determinism-critical code.

Every subsystem since the sweep runner stakes correctness on
byte-identical replay — cached sweeps compare digests, sharded runs
must merge identically at any worker count, checkpoints must resume to
the same report.  A single wall-clock read, unseeded RNG draw, or
set-iteration order leaking into a result silently breaks all of it,
usually long after the offending line was merged.  These rules flag the
sources at the line level inside the determinism-critical packages
(``repro.sim``, ``repro.core``, ``repro.graphs``, ``repro.lists``,
``repro.obs``); intentional uses carry ``# allow_nondet: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..findings import Finding
from .base import ModuleContext, Rule, call_name, walk_scoped

#: The packages whose outputs must be byte-identical run to run.
DETERMINISM_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.graphs",
    "repro.lists",
    "repro.obs",
    "repro.xval",
)

#: RNG constructors that are deterministic *when explicitly seeded*.
_SEEDED_CTORS = {"default_rng", "RandomState", "Generator", "SeedSequence"}


class _DeterminismRule(Rule):
    family = "determinism"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*DETERMINISM_PACKAGES)


class NondetCallRule(_DeterminismRule):
    """Wall clocks, unseeded RNGs, uuid/secrets/urandom, salted hash()."""

    id = "nondet-call"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = self._diagnose(node)
            if reason is not None:
                yield self.finding(
                    ctx, node, reason, witness={"call": call_name(node) or "?"}
                )

    def _diagnose(self, node: ast.Call) -> Optional[str]:
        name = call_name(node)
        if name is None:
            # np.random.<fn>(...) — a two-level attribute chain
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in ("np", "numpy")
                and fn.value.attr == "random"
            ):
                if fn.attr in _SEEDED_CTORS and (node.args or node.keywords):
                    return None
                return (
                    f"numpy.random.{fn.attr} draws from global/unseeded state; "
                    f"pass an explicit seed through the workload instead"
                )
            return None
        mod, _, attr = name.partition(".")
        if mod == "time" and attr:
            return (
                f"time.{attr} reads the wall clock; simulated results must "
                f"not depend on host timing"
            )
        if mod in ("uuid", "secrets") and attr:
            return f"{name} is nondeterministic by design"
        if name == "os.urandom":
            return "os.urandom is nondeterministic by design"
        if mod == "random" and attr:
            if attr in ("Random", "getstate", "setstate"):
                if attr == "Random" and not (node.args or node.keywords):
                    return "random.Random() without a seed is nondeterministic"
                return None
            return (
                f"random.{attr} uses the global unseeded RNG; use a seeded "
                f"random.Random / numpy Generator derived from the workload seed"
            )
        if name == "hash" and node.args:
            return (
                "builtin hash() is salted per process (PYTHONHASHSEED); its "
                "value must never reach a simulated result or an on-disk key"
            )
        return None


class NondetEnvRule(_DeterminismRule):
    """``os.environ`` / ``os.getenv`` reads inside determinism-critical code."""

    id = "nondet-env"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "os.environ read in a determinism-critical package; "
                    "environment must not influence simulated results",
                    witness={"call": "os.environ"},
                )
            elif isinstance(node, ast.Call) and call_name(node) == "os.getenv":
                yield self.finding(
                    ctx,
                    node,
                    "os.getenv read in a determinism-critical package; "
                    "environment must not influence simulated results",
                    witness={"call": "os.getenv"},
                )


#: Callables whose output order mirrors their input's iteration order.
_ORDER_EXPOSING_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}
#: set methods returning another set.
_SET_PRODUCING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


class NondetSetIterRule(_DeterminismRule):
    """Iteration whose order comes from a ``set``/``frozenset``.

    Set iteration order varies with insertion history and hash salting;
    any loop, comprehension, or ``list()``-style materialization over a
    set leaks that order into whatever it builds.  Wrapping the set in
    ``sorted(...)`` (or ``min``/``max``/``sum``, which are
    order-insensitive) is the fix and is not flagged.  The rule tracks
    local names assigned set-valued expressions within one scope, so
    ``seen = set()`` … ``for x in seen`` is caught, not just literal
    ``for x in {…}``.
    """

    id = "nondet-set-iter"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._scan_scope(ctx, scope)

    def _scan_scope(self, ctx: ModuleContext, scope: ast.AST) -> Iterator[Finding]:
        set_names: Set[str] = set()
        # pass 1: names bound to set-valued expressions in this scope only
        # (nested functions are their own scopes in the caller's loop)
        for node in walk_scoped(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if value is not None and self._is_set_expr(value, set_names):
                    for t in targets:
                        if isinstance(t, ast.Name):
                            set_names.add(t.id)
        # pass 2: iteration contexts
        for node in walk_scoped(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    yield self._flag(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if self._is_set_expr(comp.iter, set_names):
                        yield self._flag(ctx, comp.iter)
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    name in _ORDER_EXPOSING_CALLS
                    and node.args
                    and self._is_set_expr(node.args[0], set_names)
                ):
                    yield self._flag(ctx, node)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and self._is_set_expr(node.args[0], set_names)
                ):
                    yield self._flag(ctx, node)

    def _flag(self, ctx: ModuleContext, node: ast.AST) -> Finding:
        return self.finding(
            ctx,
            node,
            "iteration order taken from a set/frozenset; wrap in sorted(...) "
            "or keep an explicitly ordered structure",
        )

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _SET_PRODUCING_METHODS
                and self._is_set_expr(fn.value, set_names)
            ):
                return True
        return False


class NondetIdOrderRule(_DeterminismRule):
    """``id()`` values used at all in determinism-critical code.

    ``id()`` is an address: stable within one process, different across
    processes — so an id-keyed dict merged across shard workers, or an
    id-based sort, silently diverges.  Pure same-process membership
    tests are legitimate and carry an ``# allow_nondet`` annotation.
    """

    id = "nondet-id-order"

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.finding(
                    ctx,
                    node,
                    "id() values are per-process addresses; they must never "
                    "key persisted/merged data or feed an ordering",
                )


DETERMINISM_RULES = (
    NondetCallRule(),
    NondetEnvRule(),
    NondetSetIterRule(),
    NondetIdOrderRule(),
)
