"""Static analysis of the repo's own invariants (`repro lint`).

A stdlib-``ast`` linter sitting beside the dynamic concurrency checker
and sharing its :class:`~repro.analysis.findings.Finding` machinery.
Four rule families:

* determinism lint (:mod:`.determinism`) — nondeterminism sources in
  the determinism-critical packages; ``# allow_nondet: <reason>``.
* state-contract checker (:mod:`.state_contract`) —
  ``to_state``/``from_state`` symmetry and version bumps against the
  committed baseline; ``# nostate: <reason>``.
* hook/engine discipline (:mod:`.discipline`) — benchmarks go through
  the runner, hook events stay in the declared set, the kernel hot core
  imports no instrumentation; ``# allow_direct_engine:`` /
  ``# allow_hook:``.
* program-generator shape (:mod:`.progshape`) — balanced barriers,
  opcode arities, straight-line ``run_block``; ``# allow_shape:``.
"""

from .base import SUPPRESSION_MARKERS, ModuleContext, Rule
from .determinism import DETERMINISM_PACKAGES, DETERMINISM_RULES
from .discipline import BANNED_CONSTRUCTORS, DISCIPLINE_RULES, HOT_LOOP_MODULES
from .lint import (
    STATE_BASELINE_PATH,
    collect_state_baseline,
    default_rules,
    lint_modules,
    lint_repo,
    repo_root,
)
from .progshape import OP_ARITY, PLAIN_TAGS, SHAPE_RULES
from .state_contract import StateContractRule, extract_contracts

__all__ = [
    "SUPPRESSION_MARKERS",
    "ModuleContext",
    "Rule",
    "DETERMINISM_PACKAGES",
    "DETERMINISM_RULES",
    "BANNED_CONSTRUCTORS",
    "DISCIPLINE_RULES",
    "HOT_LOOP_MODULES",
    "STATE_BASELINE_PATH",
    "collect_state_baseline",
    "default_rules",
    "lint_modules",
    "lint_repo",
    "repo_root",
    "OP_ARITY",
    "PLAIN_TAGS",
    "SHAPE_RULES",
    "StateContractRule",
    "extract_contracts",
]
