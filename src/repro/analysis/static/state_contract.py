"""Serializable-state contract checker (``to_state``/``from_state``).

Checkpoint/restore (PR 7) rests on hand-maintained symmetry: every
piece of run state a class mutates must be written by ``to_state``,
read back by ``from_state``, and guarded by a version constant that is
bumped whenever the layout changes.  Nothing enforced that symmetry —
a field added to ``__init__`` but forgotten in ``to_state`` only
surfaces as a subtly wrong resumed run.  This pass rebuilds each
contract from the AST and cross-checks it:

* **run-state attributes** — attributes the class mutates after
  ``__init__`` (plus every dataclass field / ``__slots__`` entry) must
  map to a ``to_state`` key (name match with leading underscores
  stripped, so ``self._bus_free`` ↔ ``"bus_free"``).  Intentionally
  unserialized fields carry ``# nostate: <reason>`` (e.g. a live
  generator rebuilt by checkpoint replay).
* **pairing** — a ``to_state`` without a ``from_state`` in the same
  class is always wrong.
* **key symmetry** — ``from_state`` reading a key ``to_state`` never
  writes is a guaranteed ``KeyError`` at restore time.
* **versioning** — against the committed baseline
  (``tests/golden/state_contracts.json``): if the key set changed but
  the class's ``STATE_VERSION``/``state_version`` constant did not,
  stale checkpoints would restore into the new layout.

One root cause produces correlated symptoms (a dropped key is
simultaneously an uncovered attribute, an unknown ``from_state`` read,
and a baseline drift), so the checker reports only the
highest-priority symptom group per class.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from .base import ModuleContext, Rule

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
    "fill",
}

#: Keys that are contract metadata, not state.
_META_KEYS = {"version"}

_VERSION_NAMES = ("STATE_VERSION", "state_version")


@dataclass
class StateContract:
    """One class's serialization contract, reconstructed from the AST."""

    qualname: str  # module.Class
    class_name: str
    lineno: int
    version: Optional[int] = None
    version_line: Optional[int] = None
    #: attr name -> line of its declaration / first assignment
    attrs: Dict[str, int] = field(default_factory=dict)
    to_state_keys: Set[str] = field(default_factory=set)
    from_state_keys: Set[str] = field(default_factory=set)
    to_state_line: int = 0
    from_state_line: Optional[int] = None
    #: ``to_state`` delegates to ``super().to_state()`` — the literal key
    #: set is a lower bound, so cross-method key symmetry can't be checked.
    open_contract: bool = False

    def baseline_entry(self) -> dict:
        return {
            "version": self.version,
            "keys": sorted(self.to_state_keys),
        }


def _is_raise_only(fn: ast.FunctionDef) -> bool:
    body = [
        stmt
        for stmt in fn.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        )
    ]
    return all(isinstance(stmt, (ast.Raise, ast.Import, ast.ImportFrom)) for stmt in body)


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _dict_keys_written(fn: ast.FunctionDef) -> Set[str]:
    """String keys in dict literals plus constant subscript stores."""
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    keys.add(k.value)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            s = node.slice
            if isinstance(s, ast.Constant) and isinstance(s.value, str):
                keys.add(s.value)
        elif isinstance(node, ast.Call):
            # dict(**, key=value) keyword keys
            fname = node.func
            if isinstance(fname, ast.Name) and fname.id == "dict":
                for kw in node.keywords:
                    if kw.arg:
                        keys.add(kw.arg)
    return keys


def _keys_read(fn: ast.FunctionDef) -> Set[str]:
    """Constant subscript loads and ``.get("k")`` calls on any name."""
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            s = node.slice
            if isinstance(s, ast.Constant) and isinstance(s.value, str):
                keys.add(s.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys


def _calls_super(fn: ast.FunctionDef, method: str) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes mutated outside ``__init__`` — the class's run state.

    Tracks direct forms (``self.x = / += …``, ``self.x[k] = …``,
    ``self.x.append(…)``) and one level of local aliasing
    (``full = self._full`` … ``full[addr] = t``), which is how the
    machine models' handler factories mutate their dicts.
    """
    mutated: Set[str] = set()
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name == "__init__":
            continue
        aliases: Dict[str, str] = {}
        for node in ast.walk(item):
            if isinstance(node, ast.Assign):
                attr = _self_attr(node.value)
                if attr is not None:
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            aliases[t.id] = attr
                for t in node.targets:
                    attr = _self_attr(t)
                    if attr is not None:
                        mutated.add(attr)
                    elif isinstance(t, ast.Subscript):
                        base = t.value
                        attr = _self_attr(base)
                        if attr is not None:
                            mutated.add(attr)
                        elif isinstance(base, ast.Name) and base.id in aliases:
                            mutated.add(aliases[base.id])
            elif isinstance(node, ast.AugAssign):
                attr = _self_attr(node.target)
                if attr is not None:
                    mutated.add(attr)
                elif isinstance(node.target, ast.Subscript):
                    base = node.target.value
                    attr = _self_attr(base)
                    if attr is not None:
                        mutated.add(attr)
                    elif isinstance(base, ast.Name) and base.id in aliases:
                        mutated.add(aliases[base.id])
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    base = node.func.value
                    attr = _self_attr(base)
                    if attr is not None:
                        mutated.add(attr)
                    elif isinstance(base, ast.Name) and base.id in aliases:
                        mutated.add(aliases[base.id])
    return mutated


def extract_contracts(ctx: ModuleContext) -> List[Tuple[StateContract, ast.ClassDef]]:
    """Every class in ``ctx`` that defines a real ``to_state``."""
    out: List[Tuple[StateContract, ast.ClassDef]] = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        to_state = methods.get("to_state")
        if to_state is None or _is_raise_only(to_state):
            continue
        contract = StateContract(
            qualname=f"{ctx.module}.{cls.name}",
            class_name=cls.name,
            lineno=cls.lineno,
            to_state_line=to_state.lineno,
        )
        contract.to_state_keys = _dict_keys_written(to_state) - _META_KEYS
        contract.open_contract = _calls_super(to_state, "to_state")
        from_state = methods.get("from_state")
        if from_state is not None and not _is_raise_only(from_state):
            contract.from_state_line = from_state.lineno
            contract.from_state_keys = _keys_read(from_state) - _META_KEYS
        # version constant (own class body only; inheritance is invisible
        # to a per-file pass, so absent means "unversioned here")
        for item in cls.body:
            if isinstance(item, ast.Assign):
                for t in item.targets:
                    if isinstance(t, ast.Name) and t.id in _VERSION_NAMES:
                        if isinstance(item.value, ast.Constant) and isinstance(
                            item.value.value, int
                        ):
                            contract.version = item.value.value
                            contract.version_line = item.lineno
        # attributes: dataclass fields / __slots__ / __init__ assignments,
        # filtered down to real run state for plain classes
        is_dc = _is_dataclass(cls)
        if is_dc:
            for item in cls.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    ann = ast.dump(item.annotation) if item.annotation else ""
                    if "ClassVar" in ann:
                        continue
                    contract.attrs[item.target.id] = item.lineno
        for item in cls.body:
            if isinstance(item, ast.Assign):
                for t in item.targets:
                    if isinstance(t, ast.Name) and t.id == "__slots__":
                        if isinstance(item.value, (ast.Tuple, ast.List)):
                            for elt in item.value.elts:
                                if isinstance(elt, ast.Constant) and isinstance(
                                    elt.value, str
                                ):
                                    contract.attrs[elt.value] = item.lineno
        init = methods.get("__init__")
        if init is not None and not is_dc:
            assigned: Dict[str, int] = {}
            for node in ast.walk(init):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for t in targets:
                    attr = _self_attr(t)
                    if attr is not None and attr not in assigned:
                        assigned[attr] = t.lineno
            mutated = _mutated_attrs(cls)
            for attr, lineno in assigned.items():
                if attr in mutated:
                    contract.attrs[attr] = lineno
        out.append((contract, cls))
    return out


def _covered(attr: str, keys: Set[str]) -> bool:
    stripped = attr.lstrip("_")
    return attr in keys or stripped in keys


def load_baseline(path) -> Dict[str, dict]:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def dump_baseline(contracts: Dict[str, dict]) -> str:
    return json.dumps(contracts, indent=2, sort_keys=True) + "\n"


class StateContractRule(Rule):
    """All contract symptoms, collapsed to one group per class."""

    id = "state-contract"  # umbrella; findings carry the specific ids below
    family = "state"

    def check_ids(self):
        return (
            "state-missing-pair",
            "state-attr-missing",
            "state-key-unknown",
            "state-version-stale",
            "state-baseline-missing",
        )

    def __init__(self, baseline: Optional[Dict[str, dict]] = None) -> None:
        self.baseline = baseline
        #: filled by the driver for ``--write-state-baseline``
        self.observed: Dict[str, dict] = {}

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for contract, cls in extract_contracts(ctx):
            self.observed[contract.qualname] = contract.baseline_entry()
            yield from self._check(ctx, contract, cls)

    def _check(
        self, ctx: ModuleContext, c: StateContract, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        groups: List[List[Finding]] = []

        def make(check: str, line: int, message: str, **witness) -> Finding:
            return Finding(
                check=check,
                severity="warning" if check == "state-baseline-missing" else "error",
                message=message,
                file=ctx.path,
                line=line,
                witness=dict(witness, **{"class": c.qualname}),
            )

        if c.from_state_line is None:
            groups.append(
                [
                    make(
                        "state-missing-pair",
                        c.to_state_line,
                        f"{c.class_name}.to_state has no matching from_state; "
                        f"checkpoints of this class can never be restored",
                    )
                ]
            )

        attr_findings = []
        for attr in sorted(c.attrs):
            if _covered(attr, c.to_state_keys):
                continue
            line = c.attrs[attr]
            reason = ctx.suppression_at(line, "state")
            if reason is not None:
                attr_findings.append((attr, line, reason))
                continue
            attr_findings.append((attr, line, None))
        real = [
            make(
                "state-attr-missing",
                line,
                f"{c.class_name}.{attr} is run state (mutated after __init__) "
                f"but to_state writes no matching key; checkpoints silently "
                f"drop it",
                attr=attr,
            )
            for attr, line, reason in attr_findings
            if reason is None
        ]
        # annotated attrs are yielded too — the driver's generic marker
        # suppression moves them to stats — but they stay out of the
        # priority collapse so a fully-annotated class still reports its
        # lower-priority symptoms (e.g. a stale version constant)
        annotated = [
            make(
                "state-attr-missing",
                line,
                f"{c.class_name}.{attr} not serialized (annotated: {reason})",
                attr=attr,
            )
            for attr, line, reason in attr_findings
            if reason is not None
        ]
        if real:
            groups.append(real)

        if not c.open_contract and c.from_state_line is not None:
            unknown = sorted(c.from_state_keys - c.to_state_keys)
            if unknown:
                groups.append(
                    [
                        make(
                            "state-key-unknown",
                            c.from_state_line,
                            f"{c.class_name}.from_state reads key(s) "
                            f"{', '.join(map(repr, unknown))} that to_state never "
                            f"writes — KeyError at restore time",
                            keys=unknown,
                        )
                    ]
                )

        if self.baseline is not None:
            entry = self.baseline.get(c.qualname)
            if entry is None:
                groups.append(
                    [
                        make(
                            "state-baseline-missing",
                            c.to_state_line,
                            f"{c.qualname} is not in the committed state-contract "
                            f"baseline; regenerate it with "
                            f"`repro lint --write-state-baseline`",
                        )
                    ]
                )
            elif (
                sorted(c.to_state_keys) != entry.get("keys")
                and c.version is not None
                and c.version == entry.get("version")
            ):
                added = sorted(c.to_state_keys - set(entry.get("keys", ())))
                removed = sorted(set(entry.get("keys", ())) - c.to_state_keys)
                groups.append(
                    [
                        make(
                            "state-version-stale",
                            c.version_line or c.to_state_line,
                            f"{c.class_name}.to_state key set changed "
                            f"(+{added} -{removed}) but the version constant is "
                            f"still {c.version}; bump it so stale checkpoints are "
                            f"rejected, then refresh the baseline",
                            added=added,
                            removed=removed,
                            version=c.version,
                        )
                    ]
                )

        # one symptom group per class: the priority order above means a
        # dropped key reports as the uncovered attribute, not as three
        # cascading findings
        yield from annotated
        if groups:
            yield from groups[0]
