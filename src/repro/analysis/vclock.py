"""Sparse vector clocks for the happens-before race detector.

A :class:`VClock` maps a *thread key* to a monotonically increasing
counter.  Thread keys are opaque hashables; the checker uses
``(run_index, tid)`` pairs so that threads from successive engine runs
of one kernel never collide.  Missing entries are implicitly zero,
which keeps clocks tiny even for wide machines: a thread's clock only
carries entries for threads it has actually synchronized with.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

ThreadKey = Hashable
Epoch = Tuple[ThreadKey, int]


class VClock:
    """A sparse vector clock: ``{thread_key: count}`` with implicit zeros."""

    __slots__ = ("_c",)

    def __init__(self, initial: Dict[ThreadKey, int] | None = None) -> None:
        self._c: Dict[ThreadKey, int] = dict(initial) if initial else {}

    def get(self, key: ThreadKey) -> int:
        return self._c.get(key, 0)

    def tick(self, key: ThreadKey) -> int:
        """Advance ``key``'s component and return the new count."""
        n = self._c.get(key, 0) + 1
        self._c[key] = n
        return n

    def join(self, other: "VClock") -> None:
        """Pointwise maximum, in place."""
        c = self._c
        for key, n in other._c.items():
            if n > c.get(key, 0):
                c[key] = n

    def copy(self) -> "VClock":
        return VClock(self._c)

    def dominates(self, key: ThreadKey, count: int) -> bool:
        """True iff the epoch ``(key, count)`` happened-before this clock."""
        return self._c.get(key, 0) >= count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}:{v}" for k, v in sorted(self._c.items(), key=repr))
        return f"VClock({{{items}}})"
