"""Run the concurrency checker over registered workload/backend pairs.

This is the layer behind ``repro analyze``: it builds a backend from
the registry, executes the workload with a
:class:`~repro.analysis.checker.ConcurrencyChecker` attached, converts
engine aborts (deadlocks, cycle-budget trips) into findings instead of
letting them kill the process, and returns the finalized report.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..backends import create
from ..backends.base import Workload
from ..errors import ConfigurationError, DeadlockError, SimulationError
from .checker import ConcurrencyChecker
from .findings import AnalysisReport


def analyze_workload(
    workload: Workload,
    backend_name: str = "mta-engine",
    *,
    strict: bool = False,
    max_findings: Optional[int] = None,
) -> AnalysisReport:
    """Execute ``workload`` on ``backend_name`` under the checker.

    Only cycle-engine backends can be analyzed — analytic-model
    backends never materialize an op stream.  Engine deadlocks and
    simulation aborts become findings rather than exceptions, so a
    buggy program yields a report, not a crash.
    """
    backend = create(backend_name)
    if getattr(backend, "level", "model") != "engine":
        raise ConfigurationError(
            f"backend {backend_name!r} is not a cycle engine; "
            f"only engine-level backends produce an op stream to analyze"
        )
    checker = ConcurrencyChecker(
        strict=strict, program=f"{workload.kind}/{backend_name}"
    )
    handle = backend.prepare(workload)
    try:
        backend.execute(handle, check=checker)
    except DeadlockError as exc:
        # The engine already reported the blocked inventory via end_run;
        # only synthesize a finding if that somehow produced nothing.
        report_so_far = [
            f for f in checker.findings
            if f.check in ("deadlock", "barrier-mismatch", "sync-init")
        ]
        if not report_so_far:
            checker.note_abort("deadlock", str(exc))
    except SimulationError as exc:
        checker.note_abort("aborted", str(exc))
    report = checker.report()
    if max_findings is not None and len(report.findings) > max_findings:
        dropped = len(report.findings) - max_findings
        report.findings = report.findings[:max_findings]
        report.stats["dropped_findings"] = dropped
    report.stats["backend"] = backend_name
    report.stats["workload"] = workload.canonical()
    return report


def analyze_suite(
    *, strict: bool = False, max_findings: Optional[int] = None
) -> List[Tuple[str, AnalysisReport]]:
    """Analyze every registered paper program (see ``workloads.analysis_suite``)."""
    from ..workloads import paper_programs

    out: List[Tuple[str, AnalysisReport]] = []
    for name, workload, backend_name in paper_programs():
        report = analyze_workload(
            workload, backend_name, strict=strict, max_findings=max_findings
        )
        for f in report.findings:
            f.program = name
        out.append((name, report))
    return out
