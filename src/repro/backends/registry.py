"""Name-based backend registry.

Backends register a *factory* under a short name (``"smp-model"``,
``"mta-engine"``, …); callers create configured instances with
:func:`create`, passing backend-specific options (machine config
overrides, trace mode, engine latencies).  The CLI's ``repro
backends`` and the sweep runner resolve names through here, so adding
a machine is one ``register`` call — see ``examples/custom_machine.py``
and ``docs/BACKENDS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from .base import Backend

__all__ = ["register", "create", "names", "describe", "backend"]


@dataclass(frozen=True)
class _Entry:
    name: str
    factory: Callable[..., Backend]
    level: str
    kinds: tuple
    description: str
    #: Machine model behind the backend ("" for analytic models; see
    #: repro.sim.machines for the machine registry itself).
    machine: str = ""
    #: HookBus events the backend's execution path can deliver
    #: (empty for analytic models, which run no instruction streams).
    hooks: tuple = ()
    #: Execution tiers the backend's runs may use (empty for analytic
    #: models, which compute in closed form and have no run loop).
    tiers: tuple = ()
    #: True when the backend's runs can checkpoint/resume (the machine
    #: model implements the serializable-state contract).
    checkpoint: bool = False
    #: True when the backend accepts the ``shards`` workload option and
    #: runs through the sharded runtime (:mod:`repro.sim.shard`).
    shardable: bool = False
    #: True when the backend participates in model-vs-engine
    #: cross-validation (:mod:`repro.xval`) — either as a stack with an
    #: analytic counterpart or as the pairing backend itself.
    xval: bool = False


_REGISTRY: dict[str, _Entry] = {}


def register(
    name: str,
    factory: Callable[..., Backend],
    *,
    level: str = "model",
    kinds: tuple = (),
    description: str = "",
    machine: str = "",
    hooks: tuple = (),
    tiers: tuple = (),
    checkpoint: bool = False,
    shardable: bool = False,
    xval: bool = False,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    ``factory(**options)`` must return a :class:`Backend`.  Registering
    an existing name raises unless ``replace=True`` (so typos fail loud
    but examples can re-run).  ``machine`` names the simulation machine
    model behind an engine backend, ``hooks`` lists the
    :class:`~repro.sim.hooks.HookBus` events its runs can deliver,
    ``tiers`` the execution tiers its runs may use (the workload's
    ``tier`` option), ``checkpoint`` whether its runs support
    checkpoint/resume (the workload's ``checkpoint`` option),
    ``shardable`` whether they accept the ``shards`` workload option
    (the multi-process sharded runtime), and ``xval`` whether the
    backend participates in model-vs-engine cross-validation
    (:mod:`repro.xval`); all are informational (shown by ``repro
    backends``).
    """
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = _Entry(
        name=name,
        factory=factory,
        level=level,
        kinds=tuple(kinds),
        description=description,
        machine=machine,
        hooks=tuple(hooks),
        tiers=tuple(tiers),
        checkpoint=bool(checkpoint),
        shardable=bool(shardable),
        xval=bool(xval),
    )


def backend(name: str, **meta):
    """Decorator form of :func:`register` for factory functions."""

    def deco(factory):
        register(name, factory, **meta)
        return factory

    return deco


def create(name: str, **options) -> Backend:
    """Instantiate the backend registered under ``name``."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None
    b = entry.factory(**options)
    return b


def names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def describe() -> list[dict]:
    """One row per backend: name, level, kinds, machine, hooks, tiers,
    checkpoint, shardable, xval, description."""
    return [
        {
            "name": e.name,
            "level": e.level,
            "kinds": list(e.kinds),
            "machine": e.machine,
            "hooks": list(e.hooks),
            "tiers": list(e.tiers),
            "checkpoint": e.checkpoint,
            "shardable": e.shardable,
            "xval": e.xval,
            "description": e.description,
        }
        for e in (_REGISTRY[n] for n in names())
    ]
