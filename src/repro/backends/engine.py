"""Cycle-level engine backends: simulated SMP and MTA programs.

These wrap the instruction-level programs of
:mod:`repro.lists.programs` and :mod:`repro.graphs.programs` (plus the
raw stream-chaser microbenchmark for the MTA) behind the same
:class:`~repro.backends.base.Backend` interface the analytic models
use.  Engines execute real per-thread instruction streams, so only the
kinds with written programs are supported — ``rank`` and ``cc`` on
both engines, ``chase`` on the MTA.

Workload options consumed here (all optional):

``streams_per_proc``, ``nodes_per_walk``, ``dynamic``,
``edges_per_chunk``
    MTA program knobs (paper defaults: 100 streams, ~10 nodes/walk,
    dynamic self-scheduling).
``engine_kwargs``
    Dict of :class:`~repro.sim.MTAEngine` construction overrides
    (``mem_latency``, ``lookahead``, ``max_outstanding``, …).
``s``
    SMP Helman–JáJá sublist-count override.
``check``
    Truthy: run the program under a fresh
    :class:`~repro.analysis.ConcurrencyChecker` and attach its summary
    as ``detail["analysis"]`` (``"strict"`` enables strict mode).  An
    explicit checker passed to :meth:`execute` takes precedence.
``tier``
    Execution tier for the run (``"auto"``/``"interpreted"``/
    ``"vector"``; see ``docs/SIMULATION.md``).  Any active concurrency
    checker — explicit or option-driven — forces ``"interpreted"``:
    analysis observes every op, so ``repro analyze`` always runs at
    full per-op fidelity regardless of the requested tier.
``steps``, ``mem_latency``, ``lookahead``
    ``chase`` workload: instructions per chaser and engine latency
    parameters for the saturation curve.
``checkpoint``
    Dict enabling checkpoint/resume for the run: ``every`` (snapshot
    period in steps/cycles), ``dir`` (artifact store root), ``resume``
    (explicit artifact path/id — a stale one is an error), ``key``
    (owning-job identity; defaults to a hash of the workload), and
    ``fresh`` (truthy: ignore existing artifacts instead of
    auto-resuming from the newest).  The sweep runner injects this from
    its ``checkpoint=`` argument; see ``docs/SIMULATION.md``.
``shards``, ``shard_workers``, ``shard_executor``, ``remote_latency``
    ``shards`` > 1 runs the workload on the sharded runtime
    (:mod:`repro.sim.shard`): the address space splits into that many
    partitions, hosted by ``shard_workers`` workers (default: one per
    shard) under the ``"mp"`` (default: real processes) or ``"inline"``
    executor, with remote references charged ``remote_latency`` cycles
    (default: the machine's memory latency).  Results are deterministic
    for a fixed shard count — identical for any worker count and either
    executor.  Supported kinds: ``cc`` and ``chase`` on shardable
    engines (``repro backends`` shows the ``shard`` column); sharding
    is incompatible with ``check`` and, for the multi-phase ``cc``
    program, with ``checkpoint``.  See ``docs/SHARDING.md``.

Backend options: ``config`` — dict of :class:`~repro.core.smp_machine.SMPConfig`
field overrides for the SMP engine; ``collect_phases`` is implicit
(programs emit PHASE markers).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .base import Backend, RunHandle

__all__ = [
    "SMPEngineBackend",
    "MTAEngineBackend",
    "ModelEngineBackend",
    "make_smp_engine",
    "make_mta_engine",
]


class SMPEngineBackend(Backend):
    """Cycle-accurate SMP simulation (caches, bus, software barriers)."""

    name = "smp-engine"
    level = "engine"
    kinds = ("rank", "cc")
    description = "Cycle-level SMP engine (simulated caches + bus)"

    def __init__(self, *, config=None):
        from ..core.smp_machine import SUN_E4500

        cfg = SUN_E4500
        if config:
            try:
                cfg = dataclasses.replace(cfg, **config)
            except TypeError as exc:
                raise ConfigurationError(f"bad SMP engine config: {exc}") from None
        self.config = cfg

    def execute(self, handle: RunHandle, check=None):
        workload = handle.workload
        opt = workload.options
        if _resolve_shards(workload) is not None:
            raise ConfigurationError(
                "the SMP engine does not shard: its cache/bus timing is"
                " globally coupled; sharding needs a flat hashed-memory"
                " machine (mta-engine, mta-next-engine)"
            )
        check, attach_summary = _resolve_check(check, workload)
        tier = _resolve_tier(workload, check)
        session = _resolve_session(workload, self.name, check)
        if workload.kind == "rank":
            from ..lists.programs import simulate_smp_list_ranking

            kw = {}
            if opt.get("s") is not None:
                kw["s"] = int(opt["s"])
            sim = simulate_smp_list_ranking(
                handle.data, p=workload.p, rng=workload.seed,
                config=self.config, check=check, tier=tier, session=session, **kw,
            )
        else:
            from ..graphs.programs import simulate_smp_cc

            sim = simulate_smp_cc(
                handle.data, p=workload.p,
                max_iter=int(opt.get("max_iter", 64)),
                config=self.config, check=check, tier=tier, session=session,
                variant=opt.get("variant"),
            )
        _note_resume(session)
        summary = sim.summary
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if hasattr(sim, "iterations"):
            summary.detail["iterations"] = int(sim.iterations)
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary


class MTAEngineBackend(Backend):
    """Cycle-accurate MTA simulation (stream interleaving, full/empty bits)."""

    name = "mta-engine"
    level = "engine"
    kinds = ("rank", "cc", "chase")
    description = "Cycle-level MTA engine (multithreaded streams)"

    #: Engine facade the thread programs construct; ``None`` means the
    #: stock :class:`~repro.sim.MTAEngine`.  :class:`ModelEngineBackend`
    #: points this at a registered machine's facade instead.
    engine_factory = None

    def __init__(self):
        pass

    def execute(self, handle: RunHandle, check=None):
        workload = handle.workload
        opt = workload.options
        check, attach_summary = _resolve_check(check, workload)
        shard = _resolve_shards(workload)
        if shard is not None:
            if check is not None:
                raise ConfigurationError(
                    "sharded runs host their workers in separate kernels:"
                    " concurrency analysis (check) needs the single-kernel"
                    " per-op stream, so it requires shards=1"
                )
            return self._execute_sharded(handle, shard)
        if workload.kind == "chase":
            return self._execute_chase(handle, check, attach_summary)
        engine_kwargs = dict(opt.get("engine_kwargs") or {})
        engine_kwargs.setdefault("tier", _resolve_tier(workload, check))
        session = _resolve_session(workload, self.name, check)
        if workload.kind == "rank":
            from ..lists.programs import simulate_mta_list_ranking

            sim = simulate_mta_list_ranking(
                handle.data,
                p=workload.p,
                streams_per_proc=int(opt.get("streams_per_proc", 100)),
                nodes_per_walk=int(opt.get("nodes_per_walk", 10)),
                dynamic=bool(opt.get("dynamic", True)),
                engine_kwargs=engine_kwargs,
                check=check,
                engine=self.engine_factory,
                session=session,
            )
        else:
            from ..graphs.programs import simulate_mta_cc

            sim = simulate_mta_cc(
                handle.data,
                p=workload.p,
                streams_per_proc=int(opt.get("streams_per_proc", 100)),
                edges_per_chunk=int(opt.get("edges_per_chunk", 16)),
                max_iter=int(opt.get("max_iter", 64)),
                engine_kwargs=engine_kwargs,
                check=check,
                engine=self.engine_factory,
                session=session,
            )
        _note_resume(session)
        summary = sim.summary
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if hasattr(sim, "iterations"):
            summary.detail["iterations"] = int(sim.iterations)
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary

    def _execute_sharded(self, handle: RunHandle, shard: dict):
        """Run ``cc`` or ``chase`` on the sharded runtime (shards > 1)."""
        from ..sim import MTAEngine

        workload = handle.workload
        opt = workload.options
        if workload.kind == "rank":
            raise ConfigurationError(
                "the list-ranking program keeps its algorithm state in host"
                " arrays; sharded execution supports the kinds with"
                " engine-owned state: cc and chase"
            )
        tier = _resolve_tier(workload, None)
        engine = self.engine_factory or MTAEngine
        if workload.kind == "chase":
            return self._execute_chase_sharded(handle, shard, engine, tier)
        if workload.option("checkpoint"):
            raise ConfigurationError(
                "sharded cc runs re-seed their partitions every"
                " graft/shortcut phase, so there is no single resumable"
                " cycle stream; checkpointing applies to single-phase"
                " sharded runs (chase) or to unsharded runs"
            )
        from ..graphs.shard_programs import simulate_sharded_cc

        params = dict(opt.get("engine_kwargs") or {})
        params.pop("tier", None)
        sim = simulate_sharded_cc(
            handle.data,
            p=workload.p,
            shards=shard["shards"],
            workers=shard["workers"],
            executor=shard["executor"],
            remote_latency=shard["remote_latency"],
            streams_per_proc=int(opt.get("streams_per_proc", 100)),
            edges_per_chunk=int(opt.get("edges_per_chunk", 16)),
            max_iter=int(opt.get("max_iter", 64)),
            params=params,
            base=getattr(engine, "machine_class", None),
            tier=tier,
        )
        summary = sim.summary
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        summary.detail["iterations"] = int(sim.iterations)
        summary.detail["shards"] = shard["shards"]
        summary.detail["shard"] = sim.shard_detail
        return summary

    def _execute_chase_sharded(self, handle: RunHandle, shard, engine, tier):
        from ..obs.summary import RunSummary
        from ..sim import isa

        workload = handle.workload
        opt = workload.options
        chasers = int(handle.meta.get("chasers", 1))
        steps = int(opt.get("steps", 40))

        def _chaser():
            for i in range(steps):
                yield isa.compute(1)
                yield isa.load_dep(i)
                yield isa.load_dep(100_000 + i)

        eng = engine(
            p=workload.p,
            streams_per_proc=int(opt.get("streams_per_proc", 128)),
            mem_latency=int(opt.get("mem_latency", 100)),
            lookahead=int(opt.get("lookahead", 2)),
            tier=tier,
            shards=shard["shards"],
            shard_workers=shard["workers"],
            shard_executor=shard["executor"],
            remote_latency=shard["remote_latency"],
        )
        for _ in range(chasers):
            eng.spawn(_chaser())
        checkpoint, resume = _shard_checkpoint(workload, self.name)
        report = eng.run(name="chase", checkpoint=checkpoint, resume=resume)
        summary = RunSummary.from_report(report, machine=self.name)
        summary.name = "chase"
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        summary.detail["shards"] = shard["shards"]
        summary.detail["shard"] = eng.shard_detail
        return summary

    def _execute_chase(self, handle: RunHandle, check=None, attach_summary=False):
        """The latency-hiding saturation microbenchmark: ``chasers``
        streams each alternating one compute with two dependent loads —
        the access pattern of a list walk."""
        from ..obs.summary import RunSummary
        from ..sim import MTAEngine, isa

        workload = handle.workload
        opt = workload.options
        chasers = int(handle.meta.get("chasers", 1))
        steps = int(opt.get("steps", 40))

        def _chaser():
            for i in range(steps):
                yield isa.compute(1)
                yield isa.load_dep(i)
                yield isa.load_dep(100_000 + i)

        engine = self.engine_factory or MTAEngine
        session = _resolve_session(workload, self.name, check)
        eng = engine(
            p=workload.p,
            streams_per_proc=int(opt.get("streams_per_proc", 128)),
            mem_latency=int(opt.get("mem_latency", 100)),
            lookahead=int(opt.get("lookahead", 2)),
            check=check,
            tier=_resolve_tier(workload, check),
            session=session,
        )
        for _ in range(chasers):
            eng.spawn(_chaser())
        report = eng.run(name="chase")
        _note_resume(session)
        summary = RunSummary.from_report(report, machine=self.name)
        summary.name = "chase"
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary


class ModelEngineBackend(MTAEngineBackend):
    """Engine backend synthesized from a registered machine model.

    :func:`repro.sim.machines.register_machine` builds one of these for
    every machine that opts into backend auto-registration: the same
    MTA thread programs (``rank``, ``cc``, ``chase``) run unmodified,
    constructing the machine's engine facade instead of the stock
    :class:`~repro.sim.MTAEngine`.  The facade must therefore be
    MTAEngine-compatible (interleaved scheduling, ``spawn``/``run``).
    """

    def __init__(self, *, name, engine_factory, description=""):
        self.name = name
        self.description = description
        self.engine_factory = engine_factory


def _resolve_shards(workload):
    """Normalized shard options (None when the run is unsharded)."""
    opt = workload.options
    shards = int(opt.get("shards") or 1)
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return None
    workers = opt.get("shard_workers")
    remote = opt.get("remote_latency")
    executor = str(opt.get("shard_executor") or "mp")
    if executor not in ("mp", "inline"):
        raise ConfigurationError(
            f"unknown shard_executor {executor!r}; expected 'mp' or 'inline'"
        )
    return {
        "shards": shards,
        "workers": int(workers) if workers is not None else None,
        "executor": executor,
        "remote_latency": int(remote) if remote is not None else None,
    }


def _shard_checkpoint(workload, backend_name: str):
    """Translate the ``checkpoint`` option into a coordinator spec.

    Sharded runs snapshot as a coordinated cut — one pickle per shard
    plus a manifest — so the artifacts live in their own directory
    ``<store root>/shard-<key>/`` rather than the content-addressed
    store.  An existing manifest auto-resumes (``fresh`` ignores it;
    an explicit ``resume`` names such a directory).
    """
    spec = workload.option("checkpoint")
    if not spec:
        return None, None
    import hashlib

    from ..sim.checkpoint import CheckpointStore

    spec = dict(spec)
    key = spec.get("key")
    if not key:
        from .base import canonical_json

        canon = workload.canonical()
        canon["options"] = {
            k: v for k, v in canon["options"].items() if k != "checkpoint"
        }
        key = hashlib.sha256(
            canonical_json({"workload": canon, "backend": backend_name}).encode()
        ).hexdigest()
    ckpt_dir = CheckpointStore(spec.get("dir")).root / f"shard-{key[:16]}"
    checkpoint = None
    if spec.get("every"):
        checkpoint = {"every": int(spec["every"]), "dir": str(ckpt_dir)}
        if spec.get("stop_after"):
            checkpoint["stop_after"] = int(spec["stop_after"])
    resume = None
    ref = spec.get("resume")
    if ref:
        resume = str(ref)
    elif not spec.get("fresh") and (ckpt_dir / "manifest.json").is_file():
        resume = str(ckpt_dir)
    return checkpoint, resume


def _resolve_session(workload, backend_name: str, check=None):
    """Build a :class:`~repro.sim.checkpoint.CheckpointSession` from the
    workload's ``checkpoint`` option (None when the option is absent).

    An explicit ``resume`` reference must load — a stale or missing
    artifact raises :class:`~repro.errors.CheckpointError`.  Without
    one, the newest artifact of this job auto-resumes; stale artifacts
    are skipped with a warning (the run simply starts over).
    """
    spec = workload.option("checkpoint")
    if not spec:
        return None
    if check is not None:
        raise ConfigurationError(
            "checkpointing is incompatible with concurrency analysis:"
            " replayed runs re-execute without per-op hook events, so a"
            " checker would see a partial stream"
        )
    import hashlib
    import sys

    from ..errors import CheckpointError
    from ..sim.checkpoint import CheckpointSession, CheckpointStore, load_checkpoint

    spec = dict(spec)
    store = CheckpointStore(spec.get("dir"))
    key = spec.get("key")
    if not key:
        from .base import canonical_json

        canon = workload.canonical()
        canon["options"] = {
            k: v for k, v in canon["options"].items() if k != "checkpoint"
        }
        key = hashlib.sha256(
            canonical_json({"workload": canon, "backend": backend_name}).encode()
        ).hexdigest()
    resume = None
    ref = spec.get("resume")
    if ref:
        resume = load_checkpoint(store.resolve(ref))
    elif not spec.get("fresh"):
        newest = store.newest_for(key)
        if newest is not None:
            try:
                resume = load_checkpoint(newest)
            except CheckpointError as exc:
                print(
                    f"repro: ignoring stale checkpoint {newest.name}: {exc}",
                    file=sys.stderr,
                )
    every = spec.get("every")
    return CheckpointSession(
        every=int(every) if every else None,
        store=store,
        job={"key": key},
        resume=resume,
        should_stop=spec.get("_stop"),
    )


def _note_resume(session) -> None:
    """One stderr line when a run actually resumed (stdout records stay
    byte-identical to uninterrupted runs)."""
    if session is not None and session.resumed_from is not None:
        import sys

        print(
            f"repro: resumed from checkpoint {session.resumed_from[:16]}"
            f" ({session.replayed_runs} run(s) replayed)",
            file=sys.stderr,
        )


def _resolve_check(check, workload):
    """Honor an explicit checker or the workload's ``check`` option.

    Returns ``(checker, attach_summary)``: the summary is only attached
    for option-driven checkers — an explicit caller (``repro analyze``)
    owns the report itself.
    """
    if check is not None:
        return check, False
    opt = workload.option("check")
    if not opt:
        return None, False
    from ..analysis import ConcurrencyChecker

    return ConcurrencyChecker(strict=opt == "strict", program=workload.kind), True


def _resolve_tier(workload, check) -> str:
    """The execution tier for a workload run (see module docstring).

    An active concurrency checker wins over the requested tier: the
    checker subscribes to per-op hook events, which the vector tier
    cannot deliver, so checked runs always interpret.  ``repro analyze
    --all`` relies on this (tests/test_tier_fallback.py pins it).
    """
    tier = str(workload.option("tier") or "auto")
    from ..sim import TIERS

    if tier not in TIERS:
        raise ConfigurationError(
            f"unknown tier {tier!r}; expected one of {', '.join(TIERS)}"
        )
    if check is not None:
        return "interpreted"
    return tier


def make_smp_engine(*, config=None):
    return SMPEngineBackend(config=config)


def make_mta_engine():
    return MTAEngineBackend()
