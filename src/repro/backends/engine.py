"""Cycle-level engine backends: simulated SMP and MTA programs.

These wrap the instruction-level programs of
:mod:`repro.lists.programs` and :mod:`repro.graphs.programs` (plus the
raw stream-chaser microbenchmark for the MTA) behind the same
:class:`~repro.backends.base.Backend` interface the analytic models
use.  Engines execute real per-thread instruction streams, so only the
kinds with written programs are supported — ``rank`` and ``cc`` on
both engines, ``chase`` on the MTA.

Workload options consumed here (all optional):

``streams_per_proc``, ``nodes_per_walk``, ``dynamic``,
``edges_per_chunk``
    MTA program knobs (paper defaults: 100 streams, ~10 nodes/walk,
    dynamic self-scheduling).
``engine_kwargs``
    Dict of :class:`~repro.sim.MTAEngine` construction overrides
    (``mem_latency``, ``lookahead``, ``max_outstanding``, …).
``s``
    SMP Helman–JáJá sublist-count override.
``check``
    Truthy: run the program under a fresh
    :class:`~repro.analysis.ConcurrencyChecker` and attach its summary
    as ``detail["analysis"]`` (``"strict"`` enables strict mode).  An
    explicit checker passed to :meth:`execute` takes precedence.
``tier``
    Execution tier for the run (``"auto"``/``"interpreted"``/
    ``"vector"``; see ``docs/SIMULATION.md``).  Any active concurrency
    checker — explicit or option-driven — forces ``"interpreted"``:
    analysis observes every op, so ``repro analyze`` always runs at
    full per-op fidelity regardless of the requested tier.
``steps``, ``mem_latency``, ``lookahead``
    ``chase`` workload: instructions per chaser and engine latency
    parameters for the saturation curve.
``checkpoint``
    Dict enabling checkpoint/resume for the run: ``every`` (snapshot
    period in steps/cycles), ``dir`` (artifact store root), ``resume``
    (explicit artifact path/id — a stale one is an error), ``key``
    (owning-job identity; defaults to a hash of the workload), and
    ``fresh`` (truthy: ignore existing artifacts instead of
    auto-resuming from the newest).  The sweep runner injects this from
    its ``checkpoint=`` argument; see ``docs/SIMULATION.md``.

Backend options: ``config`` — dict of :class:`~repro.core.smp_machine.SMPConfig`
field overrides for the SMP engine; ``collect_phases`` is implicit
(programs emit PHASE markers).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .base import Backend, RunHandle

__all__ = [
    "SMPEngineBackend",
    "MTAEngineBackend",
    "ModelEngineBackend",
    "make_smp_engine",
    "make_mta_engine",
]


class SMPEngineBackend(Backend):
    """Cycle-accurate SMP simulation (caches, bus, software barriers)."""

    name = "smp-engine"
    level = "engine"
    kinds = ("rank", "cc")
    description = "Cycle-level SMP engine (simulated caches + bus)"

    def __init__(self, *, config=None):
        from ..core.smp_machine import SUN_E4500

        cfg = SUN_E4500
        if config:
            try:
                cfg = dataclasses.replace(cfg, **config)
            except TypeError as exc:
                raise ConfigurationError(f"bad SMP engine config: {exc}") from None
        self.config = cfg

    def execute(self, handle: RunHandle, check=None):
        workload = handle.workload
        opt = workload.options
        check, attach_summary = _resolve_check(check, workload)
        tier = _resolve_tier(workload, check)
        session = _resolve_session(workload, self.name, check)
        if workload.kind == "rank":
            from ..lists.programs import simulate_smp_list_ranking

            kw = {}
            if opt.get("s") is not None:
                kw["s"] = int(opt["s"])
            sim = simulate_smp_list_ranking(
                handle.data, p=workload.p, rng=workload.seed,
                config=self.config, check=check, tier=tier, session=session, **kw,
            )
        else:
            from ..graphs.programs import simulate_smp_cc

            sim = simulate_smp_cc(
                handle.data, p=workload.p,
                max_iter=int(opt.get("max_iter", 64)),
                config=self.config, check=check, tier=tier, session=session,
            )
        _note_resume(session)
        summary = sim.summary
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if hasattr(sim, "iterations"):
            summary.detail["iterations"] = int(sim.iterations)
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary


class MTAEngineBackend(Backend):
    """Cycle-accurate MTA simulation (stream interleaving, full/empty bits)."""

    name = "mta-engine"
    level = "engine"
    kinds = ("rank", "cc", "chase")
    description = "Cycle-level MTA engine (multithreaded streams)"

    #: Engine facade the thread programs construct; ``None`` means the
    #: stock :class:`~repro.sim.MTAEngine`.  :class:`ModelEngineBackend`
    #: points this at a registered machine's facade instead.
    engine_factory = None

    def __init__(self):
        pass

    def execute(self, handle: RunHandle, check=None):
        workload = handle.workload
        opt = workload.options
        check, attach_summary = _resolve_check(check, workload)
        if workload.kind == "chase":
            return self._execute_chase(handle, check, attach_summary)
        engine_kwargs = dict(opt.get("engine_kwargs") or {})
        engine_kwargs.setdefault("tier", _resolve_tier(workload, check))
        session = _resolve_session(workload, self.name, check)
        if workload.kind == "rank":
            from ..lists.programs import simulate_mta_list_ranking

            sim = simulate_mta_list_ranking(
                handle.data,
                p=workload.p,
                streams_per_proc=int(opt.get("streams_per_proc", 100)),
                nodes_per_walk=int(opt.get("nodes_per_walk", 10)),
                dynamic=bool(opt.get("dynamic", True)),
                engine_kwargs=engine_kwargs,
                check=check,
                engine=self.engine_factory,
                session=session,
            )
        else:
            from ..graphs.programs import simulate_mta_cc

            sim = simulate_mta_cc(
                handle.data,
                p=workload.p,
                streams_per_proc=int(opt.get("streams_per_proc", 100)),
                edges_per_chunk=int(opt.get("edges_per_chunk", 16)),
                max_iter=int(opt.get("max_iter", 64)),
                engine_kwargs=engine_kwargs,
                check=check,
                engine=self.engine_factory,
                session=session,
            )
        _note_resume(session)
        summary = sim.summary
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if hasattr(sim, "iterations"):
            summary.detail["iterations"] = int(sim.iterations)
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary

    def _execute_chase(self, handle: RunHandle, check=None, attach_summary=False):
        """The latency-hiding saturation microbenchmark: ``chasers``
        streams each alternating one compute with two dependent loads —
        the access pattern of a list walk."""
        from ..obs.summary import RunSummary
        from ..sim import MTAEngine, isa

        workload = handle.workload
        opt = workload.options
        chasers = int(handle.meta.get("chasers", 1))
        steps = int(opt.get("steps", 40))

        def _chaser():
            for i in range(steps):
                yield isa.compute(1)
                yield isa.load_dep(i)
                yield isa.load_dep(100_000 + i)

        engine = self.engine_factory or MTAEngine
        session = _resolve_session(workload, self.name, check)
        eng = engine(
            p=workload.p,
            streams_per_proc=int(opt.get("streams_per_proc", 128)),
            mem_latency=int(opt.get("mem_latency", 100)),
            lookahead=int(opt.get("lookahead", 2)),
            check=check,
            tier=_resolve_tier(workload, check),
            session=session,
        )
        for _ in range(chasers):
            eng.spawn(_chaser())
        report = eng.run(name="chase")
        _note_resume(session)
        summary = RunSummary.from_report(report, machine=self.name)
        summary.name = "chase"
        summary.detail.update(handle.meta)
        summary.detail["backend"] = self.name
        if attach_summary:
            summary.detail["analysis"] = check.report().summary_dict()
        return summary


class ModelEngineBackend(MTAEngineBackend):
    """Engine backend synthesized from a registered machine model.

    :func:`repro.sim.machines.register_machine` builds one of these for
    every machine that opts into backend auto-registration: the same
    MTA thread programs (``rank``, ``cc``, ``chase``) run unmodified,
    constructing the machine's engine facade instead of the stock
    :class:`~repro.sim.MTAEngine`.  The facade must therefore be
    MTAEngine-compatible (interleaved scheduling, ``spawn``/``run``).
    """

    def __init__(self, *, name, engine_factory, description=""):
        self.name = name
        self.description = description
        self.engine_factory = engine_factory


def _resolve_session(workload, backend_name: str, check=None):
    """Build a :class:`~repro.sim.checkpoint.CheckpointSession` from the
    workload's ``checkpoint`` option (None when the option is absent).

    An explicit ``resume`` reference must load — a stale or missing
    artifact raises :class:`~repro.errors.CheckpointError`.  Without
    one, the newest artifact of this job auto-resumes; stale artifacts
    are skipped with a warning (the run simply starts over).
    """
    spec = workload.option("checkpoint")
    if not spec:
        return None
    if check is not None:
        raise ConfigurationError(
            "checkpointing is incompatible with concurrency analysis:"
            " replayed runs re-execute without per-op hook events, so a"
            " checker would see a partial stream"
        )
    import hashlib
    import sys

    from ..errors import CheckpointError
    from ..sim.checkpoint import CheckpointSession, CheckpointStore, load_checkpoint

    spec = dict(spec)
    store = CheckpointStore(spec.get("dir"))
    key = spec.get("key")
    if not key:
        from .base import canonical_json

        canon = workload.canonical()
        canon["options"] = {
            k: v for k, v in canon["options"].items() if k != "checkpoint"
        }
        key = hashlib.sha256(
            canonical_json({"workload": canon, "backend": backend_name}).encode()
        ).hexdigest()
    resume = None
    ref = spec.get("resume")
    if ref:
        resume = load_checkpoint(store.resolve(ref))
    elif not spec.get("fresh"):
        newest = store.newest_for(key)
        if newest is not None:
            try:
                resume = load_checkpoint(newest)
            except CheckpointError as exc:
                print(
                    f"repro: ignoring stale checkpoint {newest.name}: {exc}",
                    file=sys.stderr,
                )
    every = spec.get("every")
    return CheckpointSession(
        every=int(every) if every else None,
        store=store,
        job={"key": key},
        resume=resume,
        should_stop=spec.get("_stop"),
    )


def _note_resume(session) -> None:
    """One stderr line when a run actually resumed (stdout records stay
    byte-identical to uninterrupted runs)."""
    if session is not None and session.resumed_from is not None:
        import sys

        print(
            f"repro: resumed from checkpoint {session.resumed_from[:16]}"
            f" ({session.replayed_runs} run(s) replayed)",
            file=sys.stderr,
        )


def _resolve_check(check, workload):
    """Honor an explicit checker or the workload's ``check`` option.

    Returns ``(checker, attach_summary)``: the summary is only attached
    for option-driven checkers — an explicit caller (``repro analyze``)
    owns the report itself.
    """
    if check is not None:
        return check, False
    opt = workload.option("check")
    if not opt:
        return None, False
    from ..analysis import ConcurrencyChecker

    return ConcurrencyChecker(strict=opt == "strict", program=workload.kind), True


def _resolve_tier(workload, check) -> str:
    """The execution tier for a workload run (see module docstring).

    An active concurrency checker wins over the requested tier: the
    checker subscribes to per-op hook events, which the vector tier
    cannot deliver, so checked runs always interpret.  ``repro analyze
    --all`` relies on this (tests/test_tier_fallback.py pins it).
    """
    tier = str(workload.option("tier") or "auto")
    from ..sim import TIERS

    if tier not in TIERS:
        raise ConfigurationError(
            f"unknown tier {tier!r}; expected one of {', '.join(TIERS)}"
        )
    if check is not None:
        return "interpreted"
    return tier


def make_smp_engine(*, config=None):
    return SMPEngineBackend(config=config)


def make_mta_engine():
    return MTAEngineBackend()
