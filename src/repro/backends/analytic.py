"""Analytic-model backends: SMP, MTA, and cluster machine models.

Each backend pairs a machine model (:class:`~repro.core.smp_machine.SMPMachine`,
:class:`~repro.core.mta_machine.MTAMachine`,
:class:`~repro.core.cluster_machine.ClusterMachine`) with the
machine-native default algorithm per workload kind; the workload's
``options["algorithm"]`` overrides the default, so any instrumented
kernel can be timed on any model (the cross-machine ablation).

Backend options accepted by the factories:

``config``
    Dict of config-field overrides applied with ``dataclasses.replace``
    to the default machine config (e.g. ``{"batching": 256}``).  A dict
    value targeting a dataclass-typed field is applied to that nested
    config (e.g. ``{"l2": {"size_words": 1 << 18}}`` resizes the SMP
    model's L2 while keeping its other geometry).
``config_name``
    Override the config's ``name`` field (a shorthand for
    ``config={"name": ...}`` that composes with it).
``use_traces``
    SMP model only: simulate caches from exact address traces when the
    kernel collected them (default ``True``).
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .base import Backend, RunHandle
from .kernels import extras_from_run, instrument

__all__ = ["AnalyticBackend", "make_smp_model", "make_mta_model", "make_cluster_model"]

_ANALYTIC_KINDS = ("rank", "cc", "bfs", "msf", "tree")


class AnalyticBackend(Backend):
    """A machine model plus per-kind default algorithms."""

    level = "model"
    kinds = _ANALYTIC_KINDS

    def __init__(self, name, description, machine_factory, defaults, config,
                 config_overrides=None, config_name=None, **machine_kwargs):
        self.name = name
        self.description = description
        self._machine_factory = machine_factory
        self._defaults = dict(defaults)
        if config_overrides:
            overrides = {}
            for key, value in config_overrides.items():
                current = getattr(config, key, None)
                if isinstance(value, dict) and dataclasses.is_dataclass(current):
                    try:
                        value = dataclasses.replace(current, **value)
                    except TypeError as exc:
                        raise ConfigurationError(
                            f"bad config override {key!r} for backend {name!r}: {exc}"
                        ) from None
                overrides[key] = value
            try:
                config = dataclasses.replace(config, **overrides)
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad config override for backend {name!r}: {exc}"
                ) from None
        if config_name:
            config = dataclasses.replace(config, name=config_name)
        self.config = config
        self._machine_kwargs = machine_kwargs

    def machine(self, p: int):
        """A fresh machine-model instance at ``p`` processors."""
        return self._machine_factory(p, self.config, **self._machine_kwargs)

    def execute(self, handle: RunHandle):
        workload = handle.workload
        steps, run, algorithm = instrument(
            workload, handle.data, default_algorithm=self._defaults.get(workload.kind)
        )
        result = self.machine(workload.p).run(steps)
        summary = result.summary()
        summary.name = f"{workload.kind}.{algorithm}"
        summary.detail.update(handle.meta)
        summary.detail["algorithm"] = algorithm
        summary.detail["backend"] = self.name
        summary.detail.update(extras_from_run(run))
        return summary


def make_smp_model(*, config=None, config_name=None, use_traces=True):
    from ..core.smp_machine import SMPMachine, SUN_E4500

    return AnalyticBackend(
        "smp-model",
        "Analytic cache-based SMP model (Sun E4500)",
        SMPMachine,
        {"rank": "helman-jaja", "cc": "sv-smp"},
        SUN_E4500,
        config_overrides=config,
        config_name=config_name,
        use_traces=use_traces,
    )


def make_mta_model(*, config=None, config_name=None):
    from ..core.mta_machine import MTAMachine, CRAY_MTA2

    return AnalyticBackend(
        "mta-model",
        "Analytic multithreaded machine model (Cray MTA-2)",
        MTAMachine,
        {"rank": "mta-walks", "cc": "sv-mta"},
        CRAY_MTA2,
        config_overrides=config,
        config_name=config_name,
    )


def make_cluster_model(*, config=None, config_name=None):
    from ..core.cluster_machine import ClusterMachine, BEOWULF_2005

    return AnalyticBackend(
        "cluster-model",
        "Analytic message-passing cluster model (Beowulf 2005)",
        ClusterMachine,
        {"rank": "helman-jaja", "cc": "sv-smp"},
        BEOWULF_2005,
        config_overrides=config,
        config_name=config_name,
    )
