"""The Backend protocol: one interface over every execution stack.

The repository times the paper's kernels five different ways — three
analytic machine models (SMP, MTA, cluster) and two cycle-level engines
(SMP, MTA).  Historically each CLI command and benchmark wired the
machine or engine it wanted by hand; a :class:`Backend` hides that
plumbing behind two calls:

``prepare(workload) -> RunHandle``
    Generate (or fetch from the memo) the workload's input — a
    successor list, a graph, an expression tree — and bundle it with
    the workload description.

``execute(handle) -> RunSummary``
    Run the kernel on this backend's execution stack and report the
    result as a :class:`repro.obs.RunSummary`, the one record type
    every stack already produces.  Kernel-specific measurements
    (iterations, cost triplet, algorithm stats) land in
    ``summary.detail``.

A :class:`Workload` is declarative and JSON-serializable, so the sweep
runner (:mod:`repro.core.runner`) can hash it for the on-disk result
cache and ship it to worker processes.  Concrete backends live in
:mod:`repro.backends.analytic` and :mod:`repro.backends.engine`; the
name-based registry is :mod:`repro.backends.registry`.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ConfigurationError

__all__ = ["Workload", "RunHandle", "Backend", "canonical_json"]


def _jsonable(value):
    """Coerce numpy scalars / tuples to plain JSON types, recursively."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if not isinstance(value, (str, bytes)):
        if hasattr(value, "tolist"):  # numpy arrays and scalars
            return _jsonable(value.tolist())
        if hasattr(value, "item"):
            try:
                return value.item()
            except (AttributeError, ValueError):
                pass
    return value


def canonical_json(obj) -> str:
    """Deterministic JSON for hashing: sorted keys, no whitespace."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Workload:
    """One declarative unit of work: a kernel on an input at a scale.

    Attributes
    ----------
    kind:
        Kernel family: ``"rank"`` (list ranking), ``"cc"`` (connected
        components), ``"bfs"``, ``"msf"``, ``"tree"`` (expression
        evaluation by contraction), or ``"chase"`` (the latency-hiding
        microbenchmark).
    p:
        Simulated processor count.
    seed:
        Seed for input generation and any randomized kernel choices.
        The sweep runner derives this deterministically from the spec
        seed and the grid point, so results never depend on worker
        count or completion order.
    params:
        Input description, e.g. ``{"n": 65536, "list": "random"}`` or
        ``{"graph": "random", "n": 4096, "m": 32768}``.
    options:
        Kernel/backend knobs, e.g. ``{"algorithm": "helman-jaja"}``,
        ``{"streams_per_proc": 64, "dynamic": False}``.  Everything
        here must be JSON-serializable.
    """

    kind: str
    p: int = 1
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)
    options: Mapping[str, Any] = field(default_factory=dict)

    def canonical(self) -> dict:
        """JSON-ready dict, the hashing and pickling form."""
        return {
            "kind": self.kind,
            "p": int(self.p),
            "seed": int(self.seed),
            "params": _jsonable(dict(self.params)),
            "options": _jsonable(dict(self.options)),
        }

    def digest(self) -> str:
        """Content hash of this workload description."""
        return hashlib.sha256(canonical_json(self.canonical()).encode()).hexdigest()

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Workload":
        return cls(
            kind=d["kind"],
            p=int(d.get("p", 1)),
            seed=int(d.get("seed", 0)),
            params=dict(d.get("params", {})),
            options=dict(d.get("options", {})),
        )

    def option(self, key: str, default=None):
        return self.options.get(key, default)


@dataclass
class RunHandle:
    """A prepared run: the workload plus its generated input.

    ``data`` holds whatever the backend's kernels consume (a successor
    array, an :class:`~repro.graphs.edgelist.EdgeList`, a ``(graph,
    weights)`` pair, an expression tree); ``meta`` carries input
    statistics worth reporting (n, m, …).
    """

    workload: Workload
    data: Any = None
    meta: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """One execution stack, able to run declarative workloads.

    Subclasses set :attr:`name`, :attr:`level`, and :attr:`kinds`, and
    implement :meth:`execute`.  :meth:`prepare` has a default that
    routes through :mod:`repro.backends.inputs`.
    """

    #: Registry name, e.g. ``"smp-model"``.
    name: str = "backend"
    #: ``"model"`` (analytic) or ``"engine"`` (cycle-level).
    level: str = "model"
    #: Workload kinds this backend can execute.
    kinds: tuple = ()
    #: One-line human description for ``repro backends``.
    description: str = ""

    def supports(self, workload: Workload) -> bool:
        """Whether this backend can execute ``workload``."""
        return workload.kind in self.kinds

    def prepare(self, workload: Workload) -> RunHandle:
        """Generate (or recall) the workload's input."""
        from .inputs import input_for

        if not self.supports(workload):
            raise ConfigurationError(
                f"backend {self.name!r} does not support workload kind"
                f" {workload.kind!r} (supported: {', '.join(self.kinds)})"
            )
        data, meta = input_for(workload)
        return RunHandle(workload=workload, data=data, meta=meta)

    @abc.abstractmethod
    def execute(self, handle: RunHandle):
        """Run the prepared workload; returns a :class:`repro.obs.RunSummary`."""

    def run(self, workload: Workload):
        """``execute(prepare(workload))`` — the one-call convenience."""
        return self.execute(self.prepare(workload))
