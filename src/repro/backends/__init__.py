"""Backend registry: one interface over every execution stack.

The five built-in backends (three analytic machine models, two
cycle-level engines) are registered at import; ``repro backends``
lists them and :func:`create` instantiates by name.  Third-party
machines register the same way — see ``examples/custom_machine.py``
and ``docs/BACKENDS.md``.
"""

from __future__ import annotations

from .base import Backend, RunHandle, Workload, canonical_json
from .inputs import clear_memo, input_for
from .kernels import algorithms_for
from .registry import backend, create, describe, names, register

__all__ = [
    "Backend",
    "RunHandle",
    "Workload",
    "canonical_json",
    "input_for",
    "clear_memo",
    "algorithms_for",
    "register",
    "backend",
    "create",
    "names",
    "describe",
]


def _register_builtins() -> None:
    # Importing repro.sim may itself re-enter this package (machine
    # registration auto-registers backends), so it happens first and
    # everything below tolerates either import order.
    from ..sim.hooks import HOOK_EVENTS
    from ..sim.machines import ensure_builtin_machines
    from .analytic import make_cluster_model, make_mta_model, make_smp_model
    from .engine import make_mta_engine, make_smp_engine
    from .xval import make_cost_xval

    register(
        "smp-model",
        make_smp_model,
        level="model",
        kinds=("rank", "cc", "bfs", "msf", "tree"),
        description="Analytic cache-based SMP model (Sun E4500)",
    )
    register(
        "mta-model",
        make_mta_model,
        level="model",
        kinds=("rank", "cc", "bfs", "msf", "tree"),
        description="Analytic multithreaded machine model (Cray MTA-2)",
    )
    register(
        "cluster-model",
        make_cluster_model,
        level="model",
        kinds=("rank", "cc", "bfs", "msf", "tree"),
        description="Analytic message-passing cluster model (Beowulf 2005)",
    )
    register(
        "smp-engine",
        make_smp_engine,
        level="engine",
        kinds=("rank", "cc"),
        description="Cycle-level SMP engine (simulated caches + bus)",
        machine="smp",
        hooks=HOOK_EVENTS,
        tiers=("interpreted", "vector"),
        checkpoint=True,
        xval=True,
    )
    register(
        "mta-engine",
        make_mta_engine,
        level="engine",
        kinds=("rank", "cc", "chase"),
        description="Cycle-level MTA engine (multithreaded streams)",
        machine="mta",
        hooks=HOOK_EVENTS,
        tiers=("interpreted", "vector"),
        checkpoint=True,
        shardable=True,
        xval=True,
    )
    register(
        "cost-xval",
        make_cost_xval,
        level="xval",
        kinds=("rank", "cc", "chase"),
        description="Model-vs-engine per-phase divergence (repro.xval)",
        xval=True,
    )
    # Register the built-in machine models (and, through the machine
    # registry's auto-registration, the mta-next engine backend).
    ensure_builtin_machines()


_register_builtins()
