"""The ``cost-xval`` backend: cross-validation as a declarative workload.

Wrapping :func:`repro.xval.run_xval` behind the
:class:`~repro.backends.base.Backend` interface buys the xval
subsystem everything the sweep runner already provides: the on-disk
result cache (a divergence report is re-derived from cache, never
re-simulated), deterministic seeding, worker sharding, and job
coalescing.  The engine's phase record is preserved on the returned
:class:`~repro.obs.RunSummary`; the full
:class:`~repro.xval.DivergenceReport` rides in ``detail["xval"]`` as a
plain dict, so it round-trips through the cache's canonical JSON
byte-identically.
"""

from __future__ import annotations

from .base import Backend, RunHandle

__all__ = ["CostXvalBackend", "make_cost_xval"]


class CostXvalBackend(Backend):
    """Pair an analytic model's per-phase predictions with an engine run.

    ``kinds`` lists every kind an engine can execute, but only pairs
    with an analytic counterpart succeed — the rest raise a structured
    :class:`~repro.errors.ConfigurationError` naming the supported
    pairs (``repro xval`` prints it as an error, not a traceback).
    """

    name = "cost-xval"
    level = "xval"
    kinds = ("rank", "cc", "chase")
    description = "Model-vs-engine per-phase divergence (repro.xval)"

    def prepare(self, workload) -> RunHandle:
        # Input generation happens inside run_xval through the engine
        # backend's own memoized prepare (both stacks must see the
        # identical input), so the handle carries only the workload.
        super_supports = self.supports(workload)
        if not super_supports:
            return super().prepare(workload)  # raises the standard error
        return RunHandle(workload=workload)

    def execute(self, handle: RunHandle):
        from ..xval import run_xval

        report, summary = run_xval(handle.workload)
        summary.name = f"xval.{report.workload}.{report.machine}"
        summary.detail["backend"] = self.name
        summary.detail["xval"] = report.to_dict()
        return summary


def make_cost_xval():
    return CostXvalBackend()
