"""Instrumented-kernel selection for the analytic backends.

An analytic backend times :class:`~repro.core.cost.StepCost` sequences;
this module maps a :class:`~repro.backends.base.Workload` to the
instrumented algorithm run that produces them.  Each workload kind has
a table of algorithms; the backend picks its machine-native default
(``"rank"`` → Helman–JáJá on the SMP, the walk algorithm on the MTA)
unless the workload's ``options["algorithm"]`` overrides it — which is
how the cross-machine ablation runs every algorithm on every machine
through the same code path.  Randomized kernels draw their private RNG
from the workload seed; ``options["rng"]`` decouples the two when an
ablation wants to vary the input while pinning the algorithm's draws.

Returned extras (iterations, cost triplet, algorithm stats) are
JSON-safe so the sweep runner can cache them alongside the
:class:`~repro.obs.RunSummary`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..errors import ConfigurationError
from .base import Workload, _jsonable, canonical_json

__all__ = ["instrument", "algorithms_for", "extras_from_run", "clear_run_memo"]

#: Algorithms per kind.  Values are ``fn(data, p, seed, options) -> run``;
#: every run exposes ``.steps`` plus kind-specific result fields.
_RANK = {}
_CC = {}


def _rank_sequential(nxt, p, seed, opt):
    from ..lists.sequential import rank_sequential

    return rank_sequential(nxt)


def _rank_wyllie(nxt, p, seed, opt):
    from ..lists.wyllie import rank_wyllie

    return rank_wyllie(nxt, p=p)


def _rank_helman_jaja(nxt, p, seed, opt):
    from ..lists.helman_jaja import rank_helman_jaja

    kw = {}
    if opt.get("s") is not None:
        kw["s"] = int(opt["s"])
    return rank_helman_jaja(
        nxt,
        p,
        rng=opt.get("rng", seed),
        collect_traces=bool(opt.get("collect_traces", False)),
        schedule=opt.get("schedule", "dynamic"),
        **kw,
    )


def _rank_mta_walks(nxt, p, seed, opt):
    from ..lists.mta_ranking import rank_mta

    kw = {}
    if opt.get("nwalks") is not None:
        kw["nwalks"] = int(opt["nwalks"])
    return rank_mta(
        nxt,
        p,
        collect_traces=bool(opt.get("collect_traces", False)),
        schedule=opt.get("schedule", "dynamic"),
        **kw,
    )


def _rank_branch_avoiding(nxt, p, seed, opt):
    from ..lists.branch_avoiding import rank_branch_avoiding

    kw = {}
    if opt.get("s") is not None:
        kw["s"] = int(opt["s"])
    return rank_branch_avoiding(
        nxt,
        p,
        rng=opt.get("rng", seed),
        collect_traces=bool(opt.get("collect_traces", False)),
        schedule=opt.get("schedule", "dynamic"),
        **kw,
    )


def _rank_compaction(nxt, p, seed, opt):
    from ..lists.compaction import rank_by_compaction

    return rank_by_compaction(
        nxt,
        p,
        fanout=int(opt.get("fanout", 10)),
        threshold=int(opt.get("threshold", 256)),
    )


def _rank_independent_set(nxt, p, seed, opt):
    from ..lists.independent_set import rank_independent_set

    return rank_independent_set(nxt, p, rng=opt.get("rng", seed))


_RANK.update(
    {
        "sequential": _rank_sequential,
        "wyllie": _rank_wyllie,
        "helman-jaja": _rank_helman_jaja,
        "helman-jaja-branch-avoiding": _rank_branch_avoiding,
        "mta-walks": _rank_mta_walks,
        "compaction": _rank_compaction,
        "independent-set": _rank_independent_set,
    }
)


def _cc_union_find(g, p, seed, opt):
    from ..graphs.sequential_cc import cc_union_find

    return cc_union_find(g)


def _cc_bfs(g, p, seed, opt):
    from ..graphs.sequential_cc import cc_bfs

    return cc_bfs(g)


def _cc_sv_pram(g, p, seed, opt):
    from ..graphs.shiloach_vishkin import sv_pram

    return sv_pram(g, p=p, max_iter=opt.get("max_iter"))


def _cc_sv_mta(g, p, seed, opt):
    from ..graphs.sv_mta import sv_mta

    return sv_mta(g, p=p, max_iter=opt.get("max_iter"))


def _cc_sv_smp(g, p, seed, opt):
    from ..graphs.sv_smp import sv_smp

    return sv_smp(g, p=p, max_iter=opt.get("max_iter"))


def _cc_sv_smp_branch_avoiding(g, p, seed, opt):
    from ..graphs.variants import sv_smp_branch_avoiding

    return sv_smp_branch_avoiding(g, p=p, max_iter=opt.get("max_iter"))


def _cc_awerbuch_shiloach(g, p, seed, opt):
    from ..graphs.variants import awerbuch_shiloach

    return awerbuch_shiloach(g, p=p, max_iter=opt.get("max_iter"))


def _cc_random_mating(g, p, seed, opt):
    from ..graphs.variants import random_mating

    return random_mating(g, p=p, rng=opt.get("rng", seed), max_iter=opt.get("max_iter"))


def _cc_hybrid(g, p, seed, opt):
    from ..graphs.variants import hybrid_cc

    return hybrid_cc(g, p=p, rng=opt.get("rng", seed), max_iter=opt.get("max_iter"))


_CC.update(
    {
        "union-find": _cc_union_find,
        "bfs-sequential": _cc_bfs,
        "sv-pram": _cc_sv_pram,
        "sv-mta": _cc_sv_mta,
        "sv-smp": _cc_sv_smp,
        "sv-smp-branch-avoiding": _cc_sv_smp_branch_avoiding,
        "awerbuch-shiloach": _cc_awerbuch_shiloach,
        "random-mating": _cc_random_mating,
        "hybrid": _cc_hybrid,
    }
)


def _bfs(g, p, seed, opt):
    from ..graphs.parallel_bfs import parallel_bfs

    return parallel_bfs(g, source=int(opt.get("source", 0)), p=p)


def _msf(data, p, seed, opt):
    from ..graphs.msf import minimum_spanning_forest

    g, w = data
    return minimum_spanning_forest(g, w, p=p)


def _tree(t, p, seed, opt):
    from ..trees import evaluate_by_contraction

    return evaluate_by_contraction(t, p=p, modulus=opt.get("modulus"))


_TABLES: dict[str, dict] = {
    "rank": _RANK,
    "cc": _CC,
    "bfs": {"frontier": _bfs},
    "msf": {"boruvka": _msf},
    "tree": {"contraction": _tree},
}

_SINGLETON_DEFAULTS = {"bfs": "frontier", "msf": "boruvka", "tree": "contraction"}

#: Finished kernel runs, keyed by everything that determines them
#: *except* the model processor count.  Jobs that run the kernel at the
#: same ``instrument_p`` (the Fig. 2 run-once-redistribute pattern)
#: then share one execution instead of recomputing per model ``p``.
_RUN_MEMO_CAP = 8
_run_memo: "OrderedDict[str, Any]" = OrderedDict()


def clear_run_memo() -> None:
    """Drop memoized kernel runs (tests and memory-sensitive callers)."""
    _run_memo.clear()


def algorithms_for(kind: str) -> list[str]:
    """Algorithm names available for a workload kind."""
    try:
        return sorted(_TABLES[kind])
    except KeyError:
        raise ConfigurationError(f"no instrumented kernels for kind {kind!r}") from None


def extras_from_run(run: Any) -> dict:
    """Kernel measurements worth reporting: iterations, triplet, stats."""
    extras: dict = {}
    for attr in ("iterations", "levels", "rounds", "n_edges", "value"):
        v = getattr(run, attr, None)
        if v is not None and not callable(v):
            extras[attr] = _jsonable(v)
    triplet = getattr(run, "triplet", None)
    if triplet is not None:
        extras["t_m"] = float(triplet.t_m)
        extras["t_c"] = float(triplet.t_c)
        extras["barriers"] = int(triplet.b)
    stats = getattr(run, "stats", None)
    if stats:
        extras["stats"] = _jsonable(dict(stats))
    return extras


def instrument(workload: Workload, data: Any, *, default_algorithm: str | None = None):
    """Run the instrumented algorithm a workload names.

    Returns ``(steps, run, algorithm)`` where ``steps`` are the
    :class:`~repro.core.cost.StepCost` list redistributed to
    ``workload.p`` when the ``instrument_p`` option asked for the
    algorithm to execute at a different processor count (the exact
    rescaling Fig. 2 uses to avoid recomputing identical sweeps).
    """
    table = _TABLES.get(workload.kind)
    if table is None:
        raise ConfigurationError(
            f"workload kind {workload.kind!r} has no instrumented kernels"
        )
    algorithm = workload.option(
        "algorithm", default_algorithm or _SINGLETON_DEFAULTS.get(workload.kind)
    )
    if algorithm not in table:
        raise ConfigurationError(
            f"unknown {workload.kind} algorithm {algorithm!r}"
            f" (available: {', '.join(sorted(table))})"
        )
    run_p = int(workload.option("instrument_p", workload.p))
    opts = {k: v for k, v in workload.options.items() if k != "instrument_p"}
    memo_key = canonical_json(
        {
            "kind": workload.kind,
            "params": dict(workload.params),
            "seed": workload.seed,
            "algorithm": algorithm,
            "run_p": run_p,
            "options": opts,
        }
    )
    if memo_key in _run_memo:
        _run_memo.move_to_end(memo_key)
        run = _run_memo[memo_key]
    else:
        run = table[algorithm](data, run_p, workload.seed, dict(workload.options))
        _run_memo[memo_key] = run
        while len(_run_memo) > _RUN_MEMO_CAP:
            _run_memo.popitem(last=False)
    steps = run.steps
    if run_p != workload.p:
        steps = [s.redistributed(workload.p) for s in steps]
    return steps, run, algorithm
