"""Workload input generation, memoized.

Every backend consumes the same inputs for the same declarative
:class:`~repro.backends.base.Workload` — a successor list, a graph, an
expression tree — generated deterministically from ``(params, seed)``.
A small in-process memo means a sweep touching the same grid input from
several backends (or several ``p`` values) generates it once; the sweep
runner additionally memoizes *results* on disk, so warm reruns skip
generation entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..errors import ConfigurationError, WorkloadError
from .base import Workload, canonical_json

__all__ = ["input_for", "clear_memo"]

#: Workload kinds that consume a graph input.
_GRAPH_KINDS = ("cc", "bfs", "msf")

_MEMO_CAP = 32
_memo: "OrderedDict[str, tuple]" = OrderedDict()


def clear_memo() -> None:
    """Drop all memoized inputs (tests and memory-sensitive callers)."""
    _memo.clear()


def _make_list(params: dict, seed: int):
    from ..lists.generate import clustered_list, ordered_list, random_list

    n = int(params.get("n", 0))
    if n < 1:
        raise WorkloadError(f"list workload needs n >= 1, got {n}")
    cls = params.get("list", "random")
    if cls == "ordered":
        nxt = ordered_list(n)
    elif cls == "random":
        nxt = random_list(n, rng=seed)
    elif cls == "clustered":
        nxt = clustered_list(n, block=int(params.get("block", 1)), rng=seed)
    else:
        raise ConfigurationError(f"unknown list class {cls!r}")
    return nxt, {"n": n, "list": cls}


def _make_graph(params: dict, seed: int):
    from ..graphs.generate import (
        best_case_labeling,
        chain_graph,
        mesh2d,
        random_graph,
        rmat_graph,
        worst_case_labeling,
    )

    cls = params.get("graph", "random")
    if cls == "random":
        n = int(params["n"])
        m = int(params.get("m", 8 * n))
        g = random_graph(n, m, rng=seed)
    elif cls == "rmat":
        g = rmat_graph(
            int(params["scale"]), int(params.get("edge_factor", 8)), rng=seed
        )
    elif cls == "mesh":
        rows = int(params.get("rows", params.get("side", 0)))
        cols = int(params.get("cols", rows))
        g = mesh2d(rows, cols)
    elif cls == "chain":
        g = chain_graph(int(params["n"]))
    else:
        raise ConfigurationError(f"unknown graph class {cls!r}")

    labeling = params.get("labeling")
    if labeling == "best":
        g = best_case_labeling(g)
    elif labeling == "worst":
        g = worst_case_labeling(g)
    elif labeling == "arbitrary":
        import numpy as np

        rng = np.random.default_rng(seed)
        g = g.relabeled(rng.permutation(g.n).astype("int64"))
    elif labeling is not None:
        raise ConfigurationError(f"unknown labeling {labeling!r}")
    return g, {"n": g.n, "m": g.m, "graph": cls}


def _make_tree(params: dict, seed: int):
    from ..trees import random_expression_tree

    leaves = int(params.get("leaves", 0))
    if leaves < 1:
        raise WorkloadError(f"tree workload needs leaves >= 1, got {leaves}")
    t = random_expression_tree(leaves, rng=seed)
    return t, {"leaves": leaves}


def _build(workload: Workload) -> tuple[Any, dict]:
    kind = workload.kind
    params = dict(workload.params)
    seed = workload.seed
    if kind == "rank":
        return _make_list(params, seed)
    if kind in _GRAPH_KINDS:
        g, meta = _make_graph(params, seed)
        if kind == "msf":
            import numpy as np

            w = np.random.default_rng(seed).random(g.m)
            return (g, w), meta
        return g, meta
    if kind == "tree":
        return _make_tree(params, seed)
    if kind == "chase":
        # pure synthetic access pattern; no materialized input
        return None, {"chasers": int(params.get("chasers", 1))}
    raise ConfigurationError(f"unknown workload kind {workload.kind!r}")


def input_for(workload: Workload) -> tuple[Any, dict]:
    """The input object and its metadata for ``workload``, memoized.

    The memo key covers kind, params, and seed — never backend options —
    so every backend timing the same grid point shares one input.
    """
    key = canonical_json(
        {"kind": workload.kind, "params": dict(workload.params), "seed": workload.seed}
    )
    if key in _memo:
        _memo.move_to_end(key)
        return _memo[key]
    value = _build(workload)
    _memo[key] = value
    while len(_memo) > _MEMO_CAP:
        _memo.popitem(last=False)
    return value
