"""Spec → job expansion: the paper's sweeps as runner job lists.

Each function expands one figure/table spec from :mod:`.specs` into the
flat list of :class:`~repro.core.runner.Job`\\ s the sweep runner
executes.  Per-job seeds come from
:func:`~repro.core.runner.derive_seed` over (spec seed, grid params),
so any subset of the sweep — run serially, in a pool, or from cache —
reproduces the identical numbers.

``tags`` on each job carry the figure's presentation labels (the
``machine``/``list``/``source`` columns of the legacy result tables);
they never affect execution or caching.
"""

from __future__ import annotations

import dataclasses

from ..backends.base import Workload
from ..core.runner import Job, derive_seed
from .specs import FIG1_SPEC, FIG2_SPEC, TABLE1_SPEC, Fig1Spec, Fig2Spec, Table1Spec

__all__ = [
    "MACHINE_LABELS",
    "fig1_jobs",
    "fig2_jobs",
    "table1_jobs",
    "tiny_fig1_spec",
    "tiny_fig2_spec",
    "tiny_table1_spec",
    "jobs_for",
]

#: Backend name → the short series label used in the paper-shaped tables.
MACHINE_LABELS = {
    "smp-model": "smp",
    "mta-model": "mta",
    "cluster-model": "cluster",
    "smp-engine": "smp-engine",
    "mta-engine": "mta-engine",
}


def fig1_jobs(
    spec: Fig1Spec | None = None,
    *,
    backends: tuple[str, ...] = ("mta-model", "smp-model"),
) -> list[Job]:
    """Fig. 1: list ranking, every (list class, n, p) on every backend."""
    spec = spec if spec is not None else FIG1_SPEC
    jobs: list[Job] = []
    for cls in spec.list_classes:
        for n in spec.sizes:
            params = {"n": int(n), "list": cls}
            seed = derive_seed(spec.seed, params)
            for p in spec.procs:
                for be in backends:
                    jobs.append(
                        Job(
                            Workload("rank", int(p), seed, params),
                            be,
                            tags={
                                "figure": "fig1",
                                "machine": MACHINE_LABELS.get(be, be),
                                "list": cls,
                                "n": int(n),
                                "p": int(p),
                            },
                        )
                    )
    return jobs


def fig2_jobs(
    spec: Fig2Spec | None = None,
    *,
    backends: tuple[str, ...] = ("mta-model", "smp-model"),
    include_sequential: bool = True,
) -> list[Job]:
    """Fig. 2: connected components over m = 4n…20n.

    Parallel jobs carry ``instrument_p = 1``: the kernel executes once
    at one processor and its scalar step costs are redistributed to the
    job's ``p`` — the paper-accurate (and 4× cheaper) protocol the
    legacy benchmark used.
    """
    spec = spec if spec is not None else FIG2_SPEC
    jobs: list[Job] = []
    for m in spec.edge_counts:
        params = {"graph": "random", "n": int(spec.n), "m": int(m)}
        seed = derive_seed(spec.seed, params)
        if include_sequential:
            jobs.append(
                Job(
                    Workload("cc", 1, seed, params, {"algorithm": "union-find"}),
                    "smp-model",
                    tags={"figure": "fig2", "machine": "seq", "m": int(m), "p": 1},
                )
            )
        for be in backends:
            for p in spec.procs:
                jobs.append(
                    Job(
                        Workload("cc", int(p), seed, params, {"instrument_p": 1}),
                        be,
                        tags={
                            "figure": "fig2",
                            "machine": MACHINE_LABELS.get(be, be),
                            "m": int(m),
                            "p": int(p),
                        },
                    )
                )
    return jobs


def table1_jobs(
    spec: Table1Spec | None = None,
    *,
    model_rank_n: int | None = None,
    model_cc_n: int | None = None,
) -> list[Job]:
    """Table 1: MTA utilization, engine-measured and model-predicted.

    Engine jobs execute real thread swarms at reduced per-processor
    scale; model jobs evaluate the analytic machine at paper scale
    (20M-node lists, n = 1M graphs by default — override the two
    ``model_*`` sizes for quick runs).
    """
    from .specs import paper_scale_fig1

    spec = spec if spec is not None else TABLE1_SPEC
    if model_rank_n is None:
        model_rank_n = max(paper_scale_fig1().sizes)
    if model_cc_n is None:
        model_cc_n = 1 << 20
    engine_opts = {
        "streams_per_proc": int(spec.streams_per_proc),
        "nodes_per_walk": int(spec.nodes_per_walk),
    }
    jobs: list[Job] = []

    for p in spec.procs:
        n = int(spec.nodes_per_proc * p)
        for cls in ("random", "ordered"):
            params = {"n": n, "list": cls}
            jobs.append(
                Job(
                    Workload("rank", int(p), derive_seed(spec.seed, params), params,
                             engine_opts),
                    "mta-engine",
                    tags={"table": "table1", "source": "engine",
                          "kernel": f"list-{cls}", "p": int(p), "n": n},
                )
            )
        n_cc = int(spec.cc_n_per_proc * p)
        params = {"graph": "random", "n": n_cc, "m": int(spec.cc_edge_multiplier * n_cc)}
        jobs.append(
            Job(
                Workload("cc", int(p), derive_seed(spec.seed, params), params,
                         {"streams_per_proc": int(spec.streams_per_proc)}),
                "mta-engine",
                tags={"table": "table1", "source": "engine",
                      "kernel": "cc", "p": int(p), "n": n_cc},
            )
        )

    for cls in ("random", "ordered"):
        params = {"n": int(model_rank_n), "list": cls}
        seed = derive_seed(spec.seed, params)
        for p in spec.procs:
            jobs.append(
                Job(
                    Workload("rank", int(p), seed, params, {"instrument_p": 1}),
                    "mta-model",
                    tags={"table": "table1", "source": "model",
                          "kernel": f"list-{cls}", "p": int(p), "n": int(model_rank_n)},
                )
            )
    params = {"graph": "random", "n": int(model_cc_n), "m": int(20 * model_cc_n)}
    seed = derive_seed(spec.seed, params)
    for p in spec.procs:
        jobs.append(
            Job(
                Workload("cc", int(p), seed, params, {"instrument_p": 1}),
                "mta-model",
                tags={"table": "table1", "source": "model",
                      "kernel": "cc", "p": int(p), "n": int(model_cc_n)},
            )
        )
    return jobs


# -- reduced grids for smoke tests and CI ---------------------------------------


def tiny_fig1_spec() -> Fig1Spec:
    """A seconds-scale Fig. 1 grid for CLI smoke tests and CI."""
    return dataclasses.replace(FIG1_SPEC, sizes=(256, 1024), procs=(1, 2))


def tiny_fig2_spec() -> Fig2Spec:
    return dataclasses.replace(
        FIG2_SPEC, n=1024, edge_multipliers=(4, 8), procs=(1, 2)
    )


def tiny_table1_spec() -> Table1Spec:
    return dataclasses.replace(
        TABLE1_SPEC, procs=(1, 2), nodes_per_proc=2000, cc_n_per_proc=400
    )


def jobs_for(name: str) -> list[Job]:
    """Named sweeps for the CLI: ``repro sweep --spec <name>``."""
    from ..errors import ConfigurationError

    makers = {
        "fig1": lambda: fig1_jobs(),
        "fig2": lambda: fig2_jobs(),
        "table1": lambda: table1_jobs(),
        "fig1-tiny": lambda: fig1_jobs(tiny_fig1_spec()),
        "fig2-tiny": lambda: fig2_jobs(tiny_fig2_spec()),
        "table1-tiny": lambda: table1_jobs(
            tiny_table1_spec(), model_rank_n=4096, model_cc_n=1024
        ),
    }
    try:
        return makers[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep {name!r} (available: {', '.join(sorted(makers))})"
        ) from None
