"""The registered paper programs, as analyzable workload/backend pairs.

``repro analyze --all`` (and the CI ``analyze`` job) sweeps this list:
every shipped kernel with a written op-tuple program — list ranking on
the MTA engine (Alg. 1) for both of Fig. 1's list classes, Helman–JáJá
ranking on the SMP engine, Shiloach–Vishkin connected components on
both engines (Fig. 2 / Alg. 3), and the latency-hiding chase
microbenchmark.  Sizes are small — the analyzer observes every issued
op, and detector coverage does not improve with scale — but keep
``p >= 2`` so there is real concurrency to check.
"""

from __future__ import annotations

from ..backends.base import Workload

__all__ = ["paper_programs"]

#: Analysis-suite scale: big enough for contended FA queues and multiple
#: SV iterations, small enough to analyze in seconds.
_N_RANK = 1024
_N_CC = 256
_M_CC = 1024
_SEED = 20050615  # match the figure specs


def paper_programs() -> list[tuple[str, Workload, str]]:
    """``(name, workload, backend)`` for every registered paper program."""
    mta_opts = {"streams_per_proc": 16}
    return [
        (
            "fig1/rank/mta/random",
            Workload(kind="rank", p=2, seed=_SEED,
                     params={"n": _N_RANK, "list": "random"}, options=mta_opts),
            "mta-engine",
        ),
        (
            "fig1/rank/mta/ordered",
            Workload(kind="rank", p=2, seed=_SEED,
                     params={"n": _N_RANK, "list": "ordered"}, options=mta_opts),
            "mta-engine",
        ),
        (
            "fig1/rank/smp/helman-jaja",
            Workload(kind="rank", p=2, seed=_SEED,
                     params={"n": _N_RANK, "list": "random"}),
            "smp-engine",
        ),
        (
            "fig2/cc/mta/sv",
            Workload(kind="cc", p=2, seed=_SEED,
                     params={"graph": "random", "n": _N_CC, "m": _M_CC},
                     options=mta_opts),
            "mta-engine",
        ),
        (
            "fig2/cc/smp/sv",
            Workload(kind="cc", p=2, seed=_SEED,
                     params={"graph": "random", "n": _N_CC, "m": _M_CC}),
            "smp-engine",
        ),
        (
            "table1/chase",
            Workload(kind="chase", p=1, seed=_SEED,
                     params={"chasers": 8}, options={"steps": 12}),
            "mta-engine",
        ),
    ]
