"""Experiment specifications for each of the paper's evaluation artifacts.

The paper's evaluation (Section 5):

* **Fig. 1** — list ranking: running time vs list size on the Cray MTA
  (left panel) and Sun SMP (right panel), p ∈ {1, 2, 4, 8}, Ordered and
  Random lists.  The largest list in Table 1 is 20M nodes (M = 2²⁰).
* **Fig. 2** — connected components: running time on both machines for
  a random graph with n = 1M vertices and m = 4M…20M edges,
  p ∈ {1, 2, 4, 8}.
* **Table 1** — MTA processor utilization for list ranking (Random and
  Ordered, 20M nodes) and connected components (n = 1M, m = 20M ≈
  n·log n), p ∈ {1, 4, 8}.

Default specs here are *scaled* so the whole suite runs in minutes on a
laptop; :func:`paper_scale_fig1` / :func:`paper_scale_fig2` return the
paper's full sizes for the analytic models (which handle them easily —
only the cycle engines need small inputs).  Every benchmark consumes
these specs, so scaling the reproduction up or down is one edit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Fig1Spec",
    "Fig2Spec",
    "Table1Spec",
    "FIG1_SPEC",
    "FIG2_SPEC",
    "TABLE1_SPEC",
    "paper_scale_fig1",
    "paper_scale_fig2",
]

M = 1 << 20  # the paper's "M = 2^20"


@dataclass(frozen=True)
class Fig1Spec:
    """List-ranking sweep (paper Fig. 1)."""

    sizes: tuple[int, ...] = (1 << 16, 1 << 18, 1 << 20)
    procs: tuple[int, ...] = (1, 2, 4, 8)
    list_classes: tuple[str, ...] = ("ordered", "random")
    seed: int = 20050615  # ICPP'05 — fixed for reproducibility

    #: Paper headline shapes checked against the measured series.
    smp_random_over_ordered: tuple[float, float] = (3.0, 4.0)
    mta_speedup_over_smp_ordered: float = 10.0
    mta_speedup_over_smp_random: float = 35.0


@dataclass(frozen=True)
class Fig2Spec:
    """Connected-components sweep (paper Fig. 2).

    Runs at the paper's full n = 1M: the analytic models handle it
    easily, and the SMP comparison *needs* it — the n-word parent array
    must exceed the 4 MB L2 for the cache behaviour the paper measured
    (a scaled-down n would sit inside the cache and flip the result).
    """

    n: int = M
    edge_multipliers: tuple[int, ...] = (4, 8, 12, 16, 20)
    procs: tuple[int, ...] = (1, 2, 4, 8)
    seed: int = 20050615

    #: Paper headline shape: MTA is 5–6× faster than the SMP.
    mta_speedup_over_smp: tuple[float, float] = (5.0, 6.0)

    @property
    def edge_counts(self) -> tuple[int, ...]:
        return tuple(k * self.n for k in self.edge_multipliers)


@dataclass(frozen=True)
class Table1Spec:
    """MTA utilization measurements (paper Table 1).

    ``nodes_per_proc`` sets the cycle-engine list size (n = that × p);
    the engine's absolute utilization converges to the paper's numbers
    as this grows — the benchmark reports the trend alongside the
    analytic-model value at full paper scale.
    """

    procs: tuple[int, ...] = (1, 4, 8)
    nodes_per_proc: int = 20000
    streams_per_proc: int = 100
    nodes_per_walk: int = 10
    cc_n_per_proc: int = 1500
    cc_edge_multiplier: int = 10
    seed: int = 20050615

    #: The paper's measured utilizations, for side-by-side reporting.
    paper_list_random: dict = field(
        default_factory=lambda: {1: 0.98, 4: 0.90, 8: 0.82}
    )
    paper_list_ordered: dict = field(
        default_factory=lambda: {1: 0.97, 4: 0.85, 8: 0.80}
    )
    paper_cc: dict = field(default_factory=lambda: {1: 0.99, 4: 0.93, 8: 0.91})


FIG1_SPEC = Fig1Spec()
FIG2_SPEC = Fig2Spec()
TABLE1_SPEC = Table1Spec()


def paper_scale_fig1() -> Fig1Spec:
    """Fig. 1 at the paper's sizes (analytic models only)."""
    return Fig1Spec(sizes=(M, 4 * M, 20 * M))


def paper_scale_fig2() -> Fig2Spec:
    """Fig. 2 at the paper's sizes (analytic models only)."""
    return Fig2Spec(n=M)
