"""Declarative experiment configurations for the paper's figures and tables."""

from .specs import (
    FIG1_SPEC,
    FIG2_SPEC,
    TABLE1_SPEC,
    Fig1Spec,
    Fig2Spec,
    Table1Spec,
    paper_scale_fig1,
    paper_scale_fig2,
)

__all__ = [
    "Fig1Spec",
    "Fig2Spec",
    "Table1Spec",
    "FIG1_SPEC",
    "FIG2_SPEC",
    "TABLE1_SPEC",
    "paper_scale_fig1",
    "paper_scale_fig2",
]
