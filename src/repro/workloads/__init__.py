"""Declarative experiment configurations for the paper's figures and tables."""

from .analysis_suite import paper_programs
from .specs import (
    FIG1_SPEC,
    FIG2_SPEC,
    TABLE1_SPEC,
    Fig1Spec,
    Fig2Spec,
    Table1Spec,
    paper_scale_fig1,
    paper_scale_fig2,
)
from .sweeps import (
    MACHINE_LABELS,
    fig1_jobs,
    fig2_jobs,
    jobs_for,
    table1_jobs,
    tiny_fig1_spec,
    tiny_fig2_spec,
    tiny_table1_spec,
)

__all__ = [
    "Fig1Spec",
    "Fig2Spec",
    "Table1Spec",
    "FIG1_SPEC",
    "FIG2_SPEC",
    "TABLE1_SPEC",
    "paper_scale_fig1",
    "paper_scale_fig2",
    "MACHINE_LABELS",
    "fig1_jobs",
    "fig2_jobs",
    "table1_jobs",
    "tiny_fig1_spec",
    "tiny_fig2_spec",
    "tiny_table1_spec",
    "jobs_for",
    "paper_programs",
]
