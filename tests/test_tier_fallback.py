"""Tier-selection and fallback-boundary tests for the vectorized fast path.

The contract (``docs/SIMULATION.md``, "Execution tiers"):

* ``tier="auto"`` picks the vector tier only when the machine publishes
  a :class:`~repro.sim.VectorProfile` **and** nothing demands per-op
  fidelity (an ``on_op``/``on_op_span``/``on_sync`` subscriber — a
  concurrency checker, an op-level tracer).
* An explicit ``tier="vector"`` that conflicts with either requirement
  raises :class:`~repro.errors.ConfigurationError` — never a silent
  downgrade.
* A hook subscribed *mid-run* demotes a running vector-tier simulation
  to interpreted at the next scheduling boundary, without dropping or
  duplicating a single cycle or event (the Hypothesis properties below
  pin this for every :data:`~repro.sim.HOOK_EVENTS` entry).
* ``repro analyze`` always executes on the interpreted tier, whatever
  tier the workload requested.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ConcurrencyChecker
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.sim import HOOK_EVENTS, MTAEngine, SMPEngine, isa
from repro.sim.kernel import _FIDELITY_EVENTS

from .test_sim_fuzz import _report_blob

# ---------------------------------------------------------------------------
# Static tier resolution
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine_cls", [MTAEngine, SMPEngine])
def test_explicit_vector_with_checker_raises(engine_cls):
    eng = engine_cls(p=1, check=ConcurrencyChecker(), tier="vector")
    attach = eng.spawn if engine_cls is MTAEngine else eng.attach
    attach(_gen([isa.compute(1)]))
    with pytest.raises(ConfigurationError, match="per-op instrumentation"):
        eng.run("t")


def test_explicit_vector_with_op_tracer_raises():
    eng = MTAEngine(p=1, tracer=Tracer(level="op"), tier="vector")
    eng.spawn(_gen([isa.compute(1)]))
    with pytest.raises(ConfigurationError, match="per-op instrumentation"):
        eng.run("t")


def test_auto_with_checker_runs_interpreted():
    eng = MTAEngine(p=1, check=ConcurrencyChecker())
    eng.spawn(_gen([isa.run_block([isa.load_dep(8 * i) for i in range(16)])]))
    eng.run("t")
    assert eng.kernel.tier_used == "interpreted"
    assert eng.kernel.window_stats["windows"] == 0


def test_banked_memory_publishes_no_vector_profile():
    """With bank modeling on there is no closed-form window; explicit
    vector refuses, auto interprets.  (This is what keeps the
    ``mta-next`` machine — ``n_banks=4096`` — interpreted-only.)"""
    eng = MTAEngine(p=1, n_banks=16, tier="vector")
    eng.spawn(_gen([isa.compute(1)]))
    with pytest.raises(ConfigurationError, match="no vector profile"):
        eng.run("t")
    eng = MTAEngine(p=1, n_banks=16)
    eng.spawn(_gen([isa.run_block([isa.load_dep(8 * i) for i in range(16)])]))
    eng.run("t")
    assert eng.kernel.tier_used == "interpreted"


def test_mta_next_backend_is_interpreted_only():
    from repro.backends import describe

    rows = {r["name"]: r for r in describe()}
    assert rows["mta-next-engine"]["tiers"] == ["interpreted"]
    assert rows["mta-engine"]["tiers"] == ["interpreted", "vector"]
    assert rows["smp-engine"]["tiers"] == ["interpreted", "vector"]


def test_phase_level_tracer_keeps_vector_tier():
    eng = MTAEngine(p=1, tracer=Tracer(level="phase"), tier="vector")
    for _ in range(4):
        eng.spawn(_gen([isa.run_block([isa.load_dep(8 * i) for i in range(64)])]))
    eng.run("t")
    assert eng.kernel.tier_used == "vector"
    assert eng.kernel.window_stats["windows"] > 0


# ---------------------------------------------------------------------------
# Mid-run subscription: demote without dropping or duplicating anything
# ---------------------------------------------------------------------------


def _gen(ops):
    def g():
        for op in ops:
            result = yield op
            del result

    return g()


def _canon_arg(a):
    if isinstance(a, (int, float, str, bool, type(None))):
        return a
    if isinstance(a, (list, tuple)):
        return [_canon_arg(x) for x in a]
    if hasattr(a, "cycles") and hasattr(a, "issued"):  # SimReport
        return _report_blob(a)
    if hasattr(a, "item"):  # numpy scalar
        return a.item()
    return type(a).__name__


def _probe(event, log):
    """A hook implementing exactly one bus event, recording every call."""

    def record(*args):
        log.append((event, [_canon_arg(a) for a in args]))

    return type("Probe", (), {event: staticmethod(record)})()


class _SubscribeOnTrigger:
    """Attaches ``probe`` to the bus at the first ``trigger`` phase."""

    def __init__(self, probe):
        self.probe = probe
        self.bus = None
        self.fired = False

    def hook_bus(self, bus):  # wired manually below
        self.bus = bus

    def on_phase(self, tid, name):
        if name == "trigger" and not self.fired:
            self.fired = True
            self.bus.add(self.probe)


def _mk_programs(seed):
    """Stream programs with a ``trigger`` phase early and, after it, at
    least one of everything an event could observe: plain ops, LD-window
    blocks, fetch-adds, a matched sync pair, phases, and a barrier."""
    rng = np.random.default_rng(seed)

    def ld_block():
        return isa.run_block(
            [isa.load_dep(int(a))
             for a in rng.integers(0, 200, int(rng.integers(4, 40)))]
        )

    lead = [
        isa.compute(int(rng.integers(1, 4))),
        isa.phase("trigger"),
        ld_block(),
        isa.fetch_add(0, 1),
        isa.sync_load_consume(900),
        ld_block(),
        isa.phase("after"),
        isa.barrier("z"),
    ]
    partner = [
        ld_block(),
        isa.sync_store(900, 7),
        isa.fetch_add(0, 1),
        isa.barrier("z"),
    ]
    progs = [lead, partner]
    for _ in range(int(rng.integers(0, 3))):
        progs.append([ld_block(), isa.compute(int(rng.integers(1, 4))),
                      isa.fetch_add(0, 1), isa.barrier("z")])
    return progs


def _run_with_midrun_probe(tier, event, seed):
    progs = _mk_programs(seed)
    log = []
    trigger = _SubscribeOnTrigger(_probe(event, log))
    eng = MTAEngine(p=2, streams_per_proc=8, mem_latency=12, tier=tier,
                    hooks=(trigger,))
    trigger.hook_bus(eng.kernel.bus)
    eng.set_counter(0, 0)
    eng.register_barrier("z", len(progs))
    for ops in progs:
        eng.spawn(_gen(ops))
    report = eng.run("t", 5_000_000)
    return _report_blob(report), log, eng.kernel


@settings(max_examples=60, deadline=None)
@given(event=st.sampled_from(HOOK_EVENTS),
       seed=st.integers(min_value=0, max_value=2**31))
def test_midrun_subscription_transitions_exactly(event, seed):
    """Subscribing any bus event mid-run: the vector tier demotes iff the
    event demands per-op fidelity, and the late subscriber sees the
    *identical* event sequence either way — nothing dropped, nothing
    duplicated, and the SimReport stays byte-identical."""
    blob_i, log_i, _ = _run_with_midrun_probe("interpreted", event, seed)
    blob_v, log_v, kernel = _run_with_midrun_probe("vector", event, seed)
    assert blob_i == blob_v
    assert log_i == log_v
    assert kernel.tier_used == "vector"
    assert kernel.tier_demoted == (event in _FIDELITY_EVENTS)
    if event == "on_op":
        # the lead stream still has ops in flight at the trigger, so a
        # demotion that dropped or replayed ops could not match
        assert log_v, "probe subscribed but observed no ops"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_nonvectorizable_ops_fall_back_per_op(seed):
    """FA, sync words, barriers, and phases interleaved with LD blocks:
    the fast tier executes those per-op (windows end at the boundary)
    with byte-identical results, and never demotes — fallback is a
    window boundary, not a tier change."""
    progs = _mk_programs(seed)
    blobs = {}
    for tier in ("interpreted", "vector"):
        eng = MTAEngine(p=2, streams_per_proc=8, mem_latency=12, tier=tier)
        eng.set_counter(0, 0)
        eng.register_barrier("z", len(progs))
        for ops in progs:
            eng.spawn(_gen(ops))
        blobs[tier] = _report_blob(eng.run("t", 5_000_000))
        if tier == "vector":
            assert eng.kernel.tier_used == "vector"
            assert not eng.kernel.tier_demoted
    assert blobs["interpreted"] == blobs["vector"]


def test_run_block_expansion_visible_per_op():
    """A ``run_block`` is macro-expanded on the interpreted tier: an
    ``on_op`` subscriber (what a checker attaches) sees every op inside
    the block individually, in program order."""
    seen = []
    probe = _probe("on_op", seen)
    block = [isa.load_dep(8 * i) for i in range(10)] + [isa.compute(2)]
    eng = MTAEngine(p=1, check=ConcurrencyChecker(), hooks=(probe,))
    eng.spawn(_gen([isa.run_block(block), isa.store(4)]))
    eng.run("t")
    assert eng.kernel.tier_used == "interpreted"
    ops = [args[1] for _event, args in seen]
    assert ops == [_canon_arg(op) for op in block + [isa.store(4)]]


# ---------------------------------------------------------------------------
# ``repro analyze`` regression: analysis always interprets
# ---------------------------------------------------------------------------


def test_analyze_forces_interpreted_tier(monkeypatch):
    """``repro analyze`` (the ``analyze_workload`` driver behind both
    ``--workload`` and ``--all``) runs the interpreted tier even when
    the workload explicitly requests the vector tier."""
    from repro.analysis import analyze_workload
    from repro.backends import Workload
    from repro.sim.kernel import SimKernel

    used = []
    orig = SimKernel.run

    def spy(self, *args, **kwargs):
        result = orig(self, *args, **kwargs)
        used.append(self.tier_used)
        return result

    monkeypatch.setattr(SimKernel, "run", spy)
    workload = Workload("rank", 2, 0, {"n": 200}, {"tier": "vector"})
    report = analyze_workload(workload, "mta-engine")
    assert used and all(t == "interpreted" for t in used)
    assert report is not None
