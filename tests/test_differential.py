"""Differential sweep: every variant vs the sequential oracle on
adversarial inputs.

List ranking: every parallel variant (and both cycle-engine
simulations) must produce exactly :func:`repro.lists.true_ranks` on the
degenerate lists that stress boundary handling — a singleton, a
two-element chain, an already-ordered list, and small random lists.

Connected components: every variant (and both cycle-engine
simulations) must match :func:`repro.graphs.cc_union_find` on graphs
that stress the grafting/termination logic — a star (maximum-degree
hub), a disconnected graph with isolated vertices, an edgeless graph,
and multi-component random graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    EdgeList,
    awerbuch_shiloach,
    cc_bfs,
    cc_union_find,
    hybrid_cc,
    normalize_labels,
    random_graph,
    random_mating,
    star_graph,
    sv_mta,
    sv_pram,
    sv_smp,
)
from repro.graphs.programs import simulate_mta_cc, simulate_smp_cc
from repro.lists import (
    ordered_list,
    random_list,
    rank_by_compaction,
    rank_helman_jaja,
    rank_independent_set,
    rank_mta,
    rank_sequential,
    rank_wyllie,
    true_ranks,
)
from repro.lists.programs import simulate_mta_list_ranking, simulate_smp_list_ranking

# -- adversarial inputs -------------------------------------------------------------

LISTS = {
    "singleton": lambda: ordered_list(1),
    "two-chain": lambda: ordered_list(2),
    "ordered": lambda: ordered_list(33),
    "random-small": lambda: random_list(37, 5),
    "random-odd": lambda: random_list(101, 9),
}


def _isolated_graph() -> EdgeList:
    # two components among vertices {0..3}; vertices 4..7 isolated
    u = np.array([0, 2], dtype=np.int64)
    v = np.array([1, 3], dtype=np.int64)
    return EdgeList(8, u, v)


def _edgeless_graph() -> EdgeList:
    empty = np.array([], dtype=np.int64)
    return EdgeList(5, empty, empty)


GRAPHS = {
    "star": lambda: star_graph(17),
    "isolated": _isolated_graph,
    "edgeless": _edgeless_graph,
    "two-stars": lambda: EdgeList(
        10,
        np.array([0, 0, 0, 0, 5, 5, 5, 5], dtype=np.int64),
        np.array([1, 2, 3, 4, 6, 7, 8, 9], dtype=np.int64),
    ),
    "random-sparse": lambda: random_graph(60, 40, rng=2),
}

LIST_VARIANTS = {
    "wyllie": lambda nxt: rank_wyllie(nxt, p=2).ranks,
    "helman-jaja": lambda nxt: rank_helman_jaja(nxt, p=2, rng=0).ranks,
    "mta-walks": lambda nxt: rank_mta(nxt, p=2).ranks,
    "compaction": lambda nxt: rank_by_compaction(nxt, p=2, threshold=8).ranks,
    "independent-set": lambda nxt: rank_independent_set(nxt, p=2, rng=0, stub=4).ranks,
    "helman-jaja-block": lambda nxt: rank_helman_jaja(
        nxt, p=2, rng=0, schedule="block"
    ).ranks,
    "engine-mta": lambda nxt: simulate_mta_list_ranking(
        nxt, p=2, streams_per_proc=8, nodes_per_walk=4
    ).ranks,
    "engine-smp": lambda nxt: simulate_smp_list_ranking(nxt, p=2, rng=0).ranks,
}

CC_VARIANTS = {
    "bfs": lambda g: cc_bfs(g).labels,
    "sv-pram": lambda g: sv_pram(g, p=2).labels,
    "sv-mta": lambda g: sv_mta(g, p=2).labels,
    "sv-smp": lambda g: sv_smp(g, p=2).labels,
    "awerbuch-shiloach": lambda g: awerbuch_shiloach(g, p=2).labels,
    "random-mating": lambda g: random_mating(g, p=2, rng=0).labels,
    "hybrid": lambda g: hybrid_cc(g, p=2, rng=0).labels,
    "engine-mta": lambda g: simulate_mta_cc(g, p=2, streams_per_proc=8).labels,
    "engine-smp": lambda g: simulate_smp_cc(g, p=2).labels,
}


@pytest.mark.parametrize("variant", sorted(LIST_VARIANTS))
@pytest.mark.parametrize("case", sorted(LISTS))
def test_list_ranking_matches_oracle(case, variant):
    nxt = LISTS[case]()
    oracle = true_ranks(nxt)
    got = LIST_VARIANTS[variant](nxt)
    assert np.array_equal(got, oracle), f"{variant} wrong on {case}"


@pytest.mark.parametrize("case", sorted(LISTS))
def test_sequential_matches_oracle(case):
    nxt = LISTS[case]()
    assert np.array_equal(rank_sequential(nxt).ranks, true_ranks(nxt))


@pytest.mark.parametrize("variant", sorted(CC_VARIANTS))
@pytest.mark.parametrize("case", sorted(GRAPHS))
def test_cc_matches_union_find(case, variant):
    g = GRAPHS[case]()
    oracle = cc_union_find(g).labels
    got = normalize_labels(np.asarray(CC_VARIANTS[variant](g)))
    assert np.array_equal(got, oracle), f"{variant} wrong on {case}"


def test_isolated_vertices_stay_singletons():
    labels = cc_union_find(_isolated_graph()).labels
    assert len(set(labels[4:].tolist())) == 4  # each isolated vertex its own component


def test_edgeless_graph_has_n_components():
    labels = cc_union_find(_edgeless_graph()).labels
    assert len(set(labels.tolist())) == 5
