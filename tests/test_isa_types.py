"""Constructor type-strictness for the op vocabulary.

A float address silently mis-simulates (it never matches the int key a
producer filled), so every constructor must reject non-int operands at
construction time with an error naming the op and operand — not deep
inside an engine run.
"""

import numpy as np
import pytest

from repro.sim import isa


class TestRejections:
    @pytest.mark.parametrize("bad", [1.0, 2.5, "3", None, [4]])
    def test_load_rejects_non_int_addr(self, bad):
        with pytest.raises(TypeError, match="L addr"):
            isa.load(bad)

    def test_store_rejects_float(self):
        with pytest.raises(TypeError, match="S addr must be an int, got float"):
            isa.store(16.0)

    def test_load_dep_rejects_float(self):
        with pytest.raises(TypeError, match="LD addr"):
            isa.load_dep(0.5)

    def test_compute_rejects_float(self):
        with pytest.raises(TypeError, match="C k"):
            isa.compute(1.5)

    def test_fetch_add_rejects_bad_addr_and_inc(self):
        with pytest.raises(TypeError, match="FA addr"):
            isa.fetch_add("x", 1)
        with pytest.raises(TypeError, match="FA inc"):
            isa.fetch_add(8, 1.0)

    def test_sync_ops_reject_bad_addr(self):
        with pytest.raises(TypeError, match="SLE addr"):
            isa.sync_load_consume(None)
        with pytest.raises(TypeError, match="SLF addr"):
            isa.sync_load_peek(2.0)
        with pytest.raises(TypeError, match="SSF addr"):
            isa.sync_store(2.0, 5)

    def test_bool_is_rejected_despite_subclassing_int(self):
        with pytest.raises(TypeError, match="S addr must be an int, got bool"):
            isa.store(True)
        with pytest.raises(TypeError, match="C k must be an int, got bool"):
            isa.compute(False)

    def test_barrier_and_phase_require_str(self):
        with pytest.raises(TypeError, match="B barrier_id"):
            isa.barrier(0)
        with pytest.raises(TypeError, match="P name"):
            isa.phase(7)

    def test_message_repr_includes_value(self):
        with pytest.raises(TypeError, match=r"got str \('oops'\)"):
            isa.load("oops")


class TestAccepted:
    def test_plain_ints(self):
        assert isa.load(5) == ("L", 5)
        assert isa.store(0) == ("S", 0)
        assert isa.fetch_add(3, -1) == ("FA", 3, -1)

    @pytest.mark.parametrize("np_int", [np.int32(7), np.int64(7), np.uint16(7)])
    def test_numpy_integer_scalars_normalize_to_int(self, np_int):
        op = isa.load(np_int)
        assert op == ("L", 7)
        assert type(op[1]) is int

    def test_sync_store_value_is_unconstrained(self):
        payload = {"any": "object"}
        assert isa.sync_store(4, payload) == ("SSF", 4, payload)

    def test_compute_default(self):
        assert isa.compute() == ("C", 1)
