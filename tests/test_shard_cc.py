"""Owner-computes Shiloach–Vishkin CC on the sharded runtime.

Acceptance check for the shard subsystem: SV-CC labels match the
union-find reference on random and RMAT graphs, and for a fixed shard
count the merged report is byte-identical for any worker count and
either executor — including ``--shards 4`` vs the single-process run.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs import cc_union_find, random_graph, rmat_graph
from repro.graphs.shard_programs import (
    cc_partition_layout,
    simulate_sharded_cc,
)

from .shard_helpers import canon


def _graphs():
    return [
        ("random", random_graph(300, 1200, rng=1)),
        ("rmat", rmat_graph(8, 8, rng=2)),
    ]


class TestShardedCC:
    @pytest.mark.parametrize("gname,g", _graphs())
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_labels_and_worker_invariance(self, gname, g, k):
        truth = cc_union_find(g).labels
        base = None
        for W, ex in ((1, "inline"), (k, "inline"), (k, "mp")):
            sim = simulate_sharded_cc(
                g, p=4, shards=k, workers=W, executor=ex,
                streams_per_proc=8, edges_per_chunk=8)
            assert np.array_equal(sim.labels, truth), (gname, k, W, ex)
            c = canon(sim.report)
            if base is None:
                base = c
            assert c == base, (gname, k, W, ex)
            assert sim.shard_detail["k"] == k
            if k > 1:
                assert sim.shard_detail["msgs_sent"] > 0

    def test_validation(self):
        g = random_graph(20, 40, rng=3)
        with pytest.raises(WorkloadError):
            simulate_sharded_cc(g, p=2, shards=4)  # p < shards
        with pytest.raises(WorkloadError):
            simulate_sharded_cc(g, p=4, shards=0)
        with pytest.raises(WorkloadError):
            simulate_sharded_cc(g, p=4, shards=2,
                                params={"n_banks": 16})


class TestPartitionLayout:
    def test_arenas_are_disjoint_and_exhaustive(self):
        layout, bounds = cc_partition_layout(100, 400, 8, 4)
        vb, eb, bases, pb = layout
        assert vb == [0, 25, 50, 75, 100]
        assert pb == [0, 2, 4, 6, 8]
        assert bounds[0] == 0
        # each arena: vertices + 2 words/edge + 2 counters + 1 flag
        for j in range(4):
            width = (vb[j + 1] - vb[j]) + 2 * (eb[j + 1] - eb[j]) + 3
            assert bounds[j + 1] - bounds[j] == width
            assert bases[j] == bounds[j]
