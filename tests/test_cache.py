"""Tests for the cache simulators (repro.arch.cache)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    hierarchy_stats,
    simulate_direct_mapped,
)
from repro.errors import ConfigurationError

L1 = CacheConfig(size_words=64, line_words=4)  # 16 lines, direct-mapped
L2 = CacheConfig(size_words=256, line_words=8)


class TestCacheConfig:
    def test_geometry(self):
        assert L1.n_lines == 16
        assert L1.n_sets == 16
        assert L1.line_shift == 2

    def test_associativity_splits_sets(self):
        c = CacheConfig(size_words=64, line_words=4, associativity=4)
        assert c.n_sets == 4

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_words=100, line_words=4)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_words=64, line_words=3)

    def test_line_larger_than_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_words=4, line_words=8)

    def test_bad_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_words=64, line_words=4, associativity=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(size_words=64, line_words=4, associativity=5)


class TestReferenceCache:
    def test_cold_miss_then_hit(self):
        c = Cache(L1)
        assert c.access(0) is False
        assert c.access(1) is True  # same 4-word line
        assert c.access(3) is True
        assert c.access(4) is False  # next line

    def test_conflict_eviction_direct_mapped(self):
        c = Cache(L1)
        c.access(0)
        assert c.access(64) is False  # same set (64 words apart), evicts line 0
        assert c.access(0) is False  # line 0 was evicted

    def test_associativity_avoids_conflict(self):
        c = Cache(CacheConfig(size_words=64, line_words=4, associativity=2))
        c.access(0)
        c.access(32)  # maps to same set in an 8-set, 2-way cache
        assert c.access(0) is True

    def test_lru_evicts_least_recent(self):
        c = Cache(CacheConfig(size_words=64, line_words=4, associativity=2))
        # three lines mapping to one set: 0, 32, 64 (8 sets of 4-word lines)
        c.access(0)
        c.access(32)
        c.access(0)  # 0 now most recent
        c.access(64)  # evicts 32
        assert c.access(0) is True
        assert c.access(32) is False

    def test_flush_keeps_stats(self):
        c = Cache(L1)
        c.access(0)
        c.access(0)
        c.flush()
        assert c.access(0) is False
        assert c.stats.accesses == 3
        assert c.stats.hits == 1

    def test_stats_hit_rate(self):
        s = CacheStats(accesses=10, hits=7)
        assert s.misses == 3
        assert s.hit_rate == pytest.approx(0.7)
        assert CacheStats().hit_rate == 1.0


class TestVectorizedDirectMapped:
    def test_matches_reference_on_stream(self, rng):
        addrs = rng.integers(0, 4096, size=3000).astype(np.int64)
        fast = simulate_direct_mapped(L1, addrs)
        slow = Cache(L1).access_stream(addrs)
        assert np.array_equal(fast, slow)

    def test_sequential_stream_hits_within_lines(self):
        addrs = np.arange(64, dtype=np.int64)
        hits = simulate_direct_mapped(L1, addrs)
        # one miss per 4-word line
        assert int((~hits).sum()) == 16

    def test_empty_stream(self):
        assert simulate_direct_mapped(L1, np.empty(0, dtype=np.int64)).size == 0

    def test_rejects_associative_config(self):
        cfg = CacheConfig(size_words=64, line_words=4, associativity=2)
        with pytest.raises(ConfigurationError):
            simulate_direct_mapped(cfg, np.array([0]))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=400),
        st.sampled_from([(32, 2), (64, 4), (128, 8)]),
    )
    def test_property_equivalence_with_reference(self, addrs, geom):
        size, line = geom
        cfg = CacheConfig(size_words=size, line_words=line)
        a = np.array(addrs, dtype=np.int64)
        assert np.array_equal(
            simulate_direct_mapped(cfg, a), Cache(cfg).access_stream(a)
        )


class TestHierarchy:
    def test_l2_sees_only_l1_misses(self, rng):
        addrs = rng.integers(0, 8192, size=2000).astype(np.int64)
        h = CacheHierarchy(L1, L2)
        s1, s2 = h.simulate_stream(addrs)
        assert s1.accesses == 2000
        assert s2.accesses == s1.misses

    def test_repeated_scan_hits_l2_when_it_fits(self):
        # 128 words fit in the 256-word L2 but thrash the 64-word L1
        addrs = np.tile(np.arange(128, dtype=np.int64), 4)
        s1, s2 = hierarchy_stats(L1, L2, addrs)
        assert s2.hits > 0
        assert s2.misses == 128 // L2.line_words  # only the cold fills miss L2

    def test_incremental_access_levels(self):
        h = CacheHierarchy(L1, L2)
        assert h.access(0) == "mem"
        assert h.access(1) == "l1"
        h._l1_cache.flush()
        assert h.access(0) == "l2"

    def test_accumulates_across_streams(self, rng):
        h = CacheHierarchy(L1, L2)
        h.simulate_stream(rng.integers(0, 512, 100).astype(np.int64))
        h.simulate_stream(rng.integers(0, 512, 100).astype(np.int64))
        assert h.l1_stats.accesses == 200
