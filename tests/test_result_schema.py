"""The shared result schema pinning both stacks to one contract.

``MachineResult`` (analytic) and ``RunSummary`` (engine) must expose
``total_cycles`` and ``phase_breakdown()`` with identical semantics —
``repro.xval`` pairs phases across the stacks through exactly these
accessors, so any drift here silently breaks cross-validation.  Every
machine model must likewise emit :class:`PhasePrediction` lists from
``predict_phases()`` whose per-phase cycles sum to the run total.
"""

from __future__ import annotations

import pytest

from repro.backends import Workload, create
from repro.core import ClusterMachine, MTAMachine, SMPMachine, StepCost
from repro.core.machine import MachineResult, PhasePrediction
from repro.obs.summary import RunSummary

STEPS = [
    StepCost(name="alpha", p=2, contig=64.0, ops=128.0, barriers=1, working_set=64),
    StepCost(name="beta", p=2, noncontig=32.0, ops=64.0, barriers=1, working_set=64),
]


def every_machine():
    return [SMPMachine(p=2), MTAMachine(p=2), ClusterMachine(p=2)]


class TestSharedAccessors:
    def test_both_result_types_expose_the_contract(self):
        for cls in (MachineResult, RunSummary):
            assert isinstance(getattr(cls, "total_cycles"), property), cls
            assert callable(getattr(cls, "phase_breakdown")), cls

    def test_machine_result_accessors(self):
        for machine in every_machine():
            result = machine.run(STEPS)
            assert result.total_cycles == result.cycles
            breakdown = result.phase_breakdown()
            assert [name for name, _ in breakdown] == ["alpha", "beta"]
            assert all(isinstance(c, float) for _, c in breakdown)
            assert sum(c for _, c in breakdown) == pytest.approx(
                result.total_cycles
            )

    def test_run_summary_accessors_match_engine_phases(self):
        workload = Workload(
            kind="cc",
            p=2,
            seed=1,
            params={"graph": "random", "n": 64, "m": 128},
        )
        summary = create("smp-engine").run(workload)
        assert summary.total_cycles == summary.cycles
        breakdown = summary.phase_breakdown()
        assert breakdown, "engine phases must surface in the breakdown"
        assert all(
            isinstance(name, str) and isinstance(c, float)
            for name, c in breakdown
        )
        assert [name for name, _ in breakdown] == [
            ph.name for ph in summary.phases
        ]

    def test_run_summary_accessors_survive_serialization(self):
        workload = Workload(
            kind="cc",
            p=2,
            seed=1,
            params={"graph": "random", "n": 64, "m": 128},
        )
        summary = create("smp-engine").run(workload)
        clone = RunSummary.from_dict(summary.to_dict())
        assert clone.total_cycles == summary.total_cycles
        assert clone.phase_breakdown() == summary.phase_breakdown()


class TestPredictPhases:
    def test_every_machine_predicts_phases(self):
        for machine in every_machine():
            predictions = machine.predict_phases(STEPS)
            assert [pr.name for pr in predictions] == ["alpha", "beta"]
            assert all(isinstance(pr, PhasePrediction) for pr in predictions)
            result = machine.run(STEPS)
            assert sum(pr.cycles for pr in predictions) == pytest.approx(
                result.total_cycles
            )

    def test_prediction_carries_the_triplet(self):
        [alpha, beta] = SMPMachine(p=2).predict_phases(STEPS)
        # T_M: noncontiguous accesses; T_C: computation; B: barriers.
        assert alpha.t_m == 0.0 and beta.t_m > 0.0
        assert alpha.t_c > 0.0 and beta.t_c > 0.0
        assert alpha.b == 1 and beta.b == 1

    def test_prediction_state_roundtrip(self):
        for pr in MTAMachine(p=2).predict_phases(STEPS):
            clone = PhasePrediction.from_state(pr.to_state())
            assert clone == pr
