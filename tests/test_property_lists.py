"""Property-based tests: all ranking algorithms agree on arbitrary lists."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lists.compaction import rank_by_compaction
from repro.lists.generate import list_from_order, true_ranks
from repro.lists.helman_jaja import helman_jaja_prefix, rank_helman_jaja
from repro.lists.independent_set import rank_independent_set
from repro.lists.mta_ranking import mta_prefix, rank_mta
from repro.lists.prefix import ADD, MAX
from repro.lists.sequential import prefix_sequential, rank_sequential
from repro.lists.wyllie import rank_wyllie

list_strategy = st.integers(min_value=1, max_value=150).flatmap(
    lambda n: st.permutations(list(range(n)))
)


@settings(max_examples=40, deadline=None)
@given(order=list_strategy, p=st.integers(min_value=1, max_value=6))
def test_all_ranking_algorithms_agree(order, p):
    nxt = list_from_order(np.array(order))
    truth = true_ranks(nxt)
    assert np.array_equal(rank_sequential(nxt).ranks, truth)
    assert np.array_equal(rank_helman_jaja(nxt, p=p, rng=0).ranks, truth)
    assert np.array_equal(rank_mta(nxt, p=p).ranks, truth)
    assert np.array_equal(rank_wyllie(nxt, p=p).ranks, truth)
    assert np.array_equal(rank_by_compaction(nxt, p=p, threshold=16).ranks, truth)
    assert np.array_equal(rank_independent_set(nxt, p=p, rng=1, stub=4).ranks, truth)


@settings(max_examples=30, deadline=None)
@given(
    order=list_strategy,
    seed=st.integers(min_value=0, max_value=2**31),
    s=st.integers(min_value=1, max_value=40),
)
def test_helman_jaja_any_sublist_count(order, seed, s):
    nxt = list_from_order(np.array(order))
    run = rank_helman_jaja(nxt, p=2, s=s, rng=seed)
    assert np.array_equal(run.ranks, true_ranks(nxt))


@settings(max_examples=30, deadline=None)
@given(
    order=list_strategy,
    values_seed=st.integers(min_value=0, max_value=2**31),
)
def test_parallel_prefix_matches_sequential_for_add_and_max(order, values_seed):
    nxt = list_from_order(np.array(order))
    n = len(nxt)
    values = np.random.default_rng(values_seed).integers(-1000, 1000, n)
    for op in (ADD, MAX):
        ref = prefix_sequential(nxt, values, op)
        hj = helman_jaja_prefix(nxt, p=3, values=values, op=op, rng=1)
        mta = mta_prefix(nxt, p=3, values=values, op=op)
        assert np.array_equal(hj.prefix, ref)
        assert np.array_equal(mta.prefix, ref)


@settings(max_examples=40, deadline=None)
@given(order=list_strategy)
def test_cost_counts_are_nonnegative_and_finite(order):
    nxt = list_from_order(np.array(order))
    run = rank_helman_jaja(nxt, p=2, rng=0)
    for step in run.steps:
        for arr in (step.contig, step.noncontig, step.ops,
                    step.contig_writes, step.noncontig_writes):
            assert np.isfinite(arr).all()
            assert (arr >= 0).all()
        assert step.barriers >= 0
