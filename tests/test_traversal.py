"""Tests for the shared sublist traversal engine (repro.lists._traversal)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.lists._traversal import traverse_sublists
from repro.lists.generate import TAIL, head_of, ordered_list, random_list, true_ranks
from repro.lists.prefix import ADD, MAX


def ones(n):
    return np.ones(n, dtype=np.int64)


class TestTraversalPartition:
    def test_every_node_owned_exactly_once(self, rng):
        nxt = random_list(300, rng)
        heads = np.unique(
            np.concatenate([[head_of(nxt)], rng.choice(300, 12, replace=False)])
        )
        trav = traverse_sublists(nxt, heads, ones(300), ADD)
        assert (trav.sublist_id >= 0).all()
        assert trav.lengths.sum() == 300

    def test_positions_are_dense_per_walk(self, rng):
        nxt = random_list(120, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(120, 5, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(120), ADD)
        for w in range(trav.n_walks):
            pos = np.sort(trav.pos[trav.sublist_id == w])
            assert pos.tolist() == list(range(trav.lengths[w]))

    def test_single_walk_covers_whole_list(self):
        nxt = ordered_list(50)
        trav = traverse_sublists(nxt, np.array([0]), ones(50), ADD)
        assert trav.n_walks == 1
        assert trav.lengths[0] == 50
        assert trav.stop_node[0] == TAIL
        assert trav.rounds == 50


class TestTraversalPrefix:
    def test_local_prefix_is_position_plus_one_for_ones(self, rng):
        nxt = random_list(200, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(200, 7, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(200), ADD)
        assert np.array_equal(trav.local, trav.pos + 1)

    def test_totals_match_lengths_for_ones(self, rng):
        nxt = random_list(150, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(150, 9, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(150), ADD)
        assert np.array_equal(trav.totals, trav.lengths)

    def test_max_operator(self, rng):
        nxt = ordered_list(10)
        values = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3])
        trav = traverse_sublists(nxt, np.array([0, 5]), values, MAX)
        # walk 0 covers ranks 0..4 (max prefix 3,3,4,4,5), walk 1 ranks 5..9
        assert trav.local[:5].tolist() == [3, 3, 4, 4, 5]
        assert trav.local[5:].tolist() == [9, 9, 9, 9, 9]


class TestTraversalChain:
    def test_chain_order_follows_ranks(self, rng):
        nxt = random_list(100, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(100, 6, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(100), ADD)
        order = trav.chain_order()
        ranks = true_ranks(nxt)
        head_ranks = [ranks[heads[w]] for w in order]
        assert head_ranks == sorted(head_ranks)

    def test_next_walk_terminates_once(self, rng):
        nxt = random_list(80, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(80, 4, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(80), ADD)
        nw = trav.next_walk()
        assert int((nw < 0).sum()) == 1  # exactly one final sublist


class TestTraversalContiguity:
    def test_ordered_list_fully_sequential(self):
        nxt = ordered_list(100)
        trav = traverse_sublists(nxt, np.array([0, 25, 50, 75]), ones(100), ADD)
        # every non-head visit moved to position+1
        assert trav.seq_steps.sum() == 100 - 4

    def test_random_list_mostly_non_sequential(self, rng):
        nxt = random_list(1000, rng)
        heads = np.unique(np.concatenate([[head_of(nxt)], rng.choice(1000, 7, replace=False)]))
        trav = traverse_sublists(nxt, heads, ones(1000), ADD)
        assert trav.seq_steps.sum() < 50


class TestTraversalErrors:
    def test_missing_head_rejected(self):
        nxt = ordered_list(10)
        with pytest.raises(WorkloadError):
            traverse_sublists(nxt, np.array([5]), ones(10), ADD)

    def test_duplicate_heads_rejected(self):
        nxt = ordered_list(10)
        with pytest.raises(WorkloadError):
            traverse_sublists(nxt, np.array([0, 0]), ones(10), ADD)

    def test_empty_heads_rejected(self):
        nxt = ordered_list(10)
        with pytest.raises(WorkloadError):
            traverse_sublists(nxt, np.array([], dtype=np.int64), ones(10), ADD)


class TestStrategyEquivalence:
    """The lock-step and per-walk-chase paths must be indistinguishable."""

    @pytest.mark.parametrize("op_name", ["ADD", "MAX"])
    def test_chase_matches_lockstep(self, rng, op_name):
        from repro.lists import prefix as prefix_ops
        from repro.lists._traversal import _traverse_chase

        op = getattr(prefix_ops, op_name)
        for _ in range(15):
            n = int(rng.integers(5, 800))
            nxt = random_list(n, rng)
            k = int(rng.integers(1, 8))
            heads = np.unique(
                np.concatenate([[head_of(nxt)], rng.choice(n, min(k, n), replace=False)])
            )
            values = rng.integers(-100, 100, n)
            a = _traverse_chase(nxt, heads, values, op)
            b = traverse_sublists(nxt, heads, values, op)
            for attr in (
                "local", "sublist_id", "pos", "lengths",
                "stop_node", "totals", "seq_steps",
            ):
                assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr

    def test_long_sublists_dispatch_to_chase(self):
        """Few heads on a big list must not take the round-synchronous path
        (it would need one NumPy dispatch per node)."""
        n = 50_000
        nxt = ordered_list(n)
        trav = traverse_sublists(nxt, np.array([0, n // 2]), ones(n), ADD)
        assert trav.lengths.sum() == n
        assert trav.rounds == n // 2  # max sublist length, either path


class TestPrefixOpAccumulate:
    def test_ufunc_accumulate(self):
        import numpy as np
        from repro.lists.prefix import ADD, MAX

        v = np.array([3, -1, 4, 1, -5])
        assert ADD.accumulate(v).tolist() == [3, 2, 6, 7, 2]
        assert MAX.accumulate(v).tolist() == [3, 3, 4, 4, 4]

    def test_fallback_loop_matches_ufunc(self):
        import numpy as np
        from repro.lists.prefix import PrefixOp

        slow = PrefixOp("add-slow", lambda a, b: a + b, 0)
        v = np.arange(10)
        assert slow.accumulate(v).tolist() == np.add.accumulate(v).tolist()
