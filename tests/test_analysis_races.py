"""Unit tests for the happens-before machinery and race detection."""

from tests import racy_programs as rp

from repro.analysis import RaceDetector, VClock


class TestVClock:
    def test_implicit_zero_and_tick(self):
        vc = VClock()
        assert vc.get("a") == 0
        assert vc.tick("a") == 1
        assert vc.tick("a") == 2
        assert vc.get("b") == 0

    def test_join_is_pointwise_max(self):
        a = VClock({"x": 3, "y": 1})
        b = VClock({"y": 5, "z": 2})
        a.join(b)
        assert (a.get("x"), a.get("y"), a.get("z")) == (3, 5, 2)

    def test_dominates(self):
        vc = VClock({"t": 4})
        assert vc.dominates("t", 4)
        assert vc.dominates("t", 3)
        assert not vc.dominates("t", 5)
        assert not vc.dominates("u", 1)

    def test_copy_is_independent(self):
        a = VClock({"t": 1})
        b = a.copy()
        b.tick("t")
        assert a.get("t") == 1 and b.get("t") == 2


class TestRaceDetector:
    def test_write_write_conflict(self):
        rd = RaceDetector()
        rd.write(("r", 0), 10, "S", 0, {})
        rd.write(("r", 1), 10, "S", 0, {})
        assert len(rd.findings) == 1
        assert rd.findings[0].witness["conflict"] == "write-write"

    def test_write_read_conflict(self):
        rd = RaceDetector()
        rd.write(("r", 0), 10, "S", 0, {})
        rd.read(("r", 1), 10, "L", 0, {})
        assert len(rd.findings) == 1
        assert rd.findings[0].witness["conflict"] == "write-read"

    def test_sync_edge_orders_accesses(self):
        rd = RaceDetector()
        w, r = ("r", 0), ("r", 1)
        rd.write(w, 10, "S", 0, {})
        rd.release(w, ("fe", 99))
        rd.acquire(r, ("fe", 99))
        rd.read(r, 10, "L", 0, {})
        assert rd.findings == []

    def test_barrier_orders_all_participants(self):
        rd = RaceDetector()
        keys = [("r", t) for t in range(3)]
        rd.write(keys[0], 7, "S", 0, {})
        rd.barrier_release(("r", "b"), keys)
        rd.read(keys[2], 7, "L", 1, {})
        rd.write(keys[1], 7, "S", 1, {})
        # the post-barrier read/write still race with *each other*
        assert len(rd.findings) == 1

    def test_run_boundary_is_global_barrier(self):
        rd = RaceDetector()
        rd.write((0, 0), 5, "S", 0, {})
        rd.end_run()
        rd.read((1, 1), 5, "L", 0, {})
        assert rd.findings == []

    def test_same_thread_never_races(self):
        rd = RaceDetector()
        rd.write(("r", 0), 3, "S", 0, {})
        rd.read(("r", 0), 3, "L", 1, {})
        rd.write(("r", 0), 3, "S", 2, {})
        assert rd.findings == []

    def test_race_cap_per_address(self):
        rd = RaceDetector()
        for t in range(6):
            rd.write(("r", t), 10, "S", 0, {})
        assert len(rd.findings) == 2  # MAX_RACES_PER_ADDRESS


class TestRaceCorpus:
    def test_store_store_race_fires(self):
        r = rp.run_racy_store_store()
        assert [f.check for f in r.errors] == ["race"]
        f = r.errors[0]
        assert f.address == 0 and f.witness["conflict"] == "write-write"

    def test_unsynced_read_race_fires(self):
        r = rp.run_racy_unsynced_read()
        assert any(f.check == "race" for f in r.errors)

    def test_fa_neighbor_race_fires(self):
        r = rp.run_racy_fa_neighbor()
        assert all(f.check == "race" for f in r.errors)
        assert len(r.errors) >= 1

    def test_full_empty_handoff_is_clean(self):
        r = rp.run_clean_fe_handoff()
        assert r.findings == []

    def test_fa_ticket_dispatch_is_clean(self):
        r = rp.run_clean_fa_tickets()
        assert r.findings == []

    def test_barrier_pair_is_clean(self):
        r = rp.run_clean_barrier_pair()
        assert r.findings == []

    def test_fa_concentration_in_stats(self):
        r = rp.run_clean_fa_tickets()
        fa = r.stats["fa"]
        assert fa["total"] == 4 and fa["sites"] == 1
        assert fa["top_share"] == 1.0 and fa["hhi"] == 1.0
