"""Tests for the experiment harness (repro.core.experiment)."""

import pytest

from repro.core.experiment import ResultTable, Row
from repro.errors import ConfigurationError


class TestRow:
    def test_get_prefers_params(self):
        r = Row("e", {"n": 10}, {"seconds": 1.5})
        assert r.get("n") == 10
        assert r.get("seconds") == 1.5

    def test_get_missing_raises(self):
        r = Row("e", {}, {})
        with pytest.raises(KeyError):
            r.get("nope")


class TestResultTable:
    def make(self):
        t = ResultTable("fig1")
        for n in (100, 200):
            for p in (1, 2):
                t.add(n=n, p=p, machine="mta", seconds=n / (50.0 * p))
        return t

    def test_add_splits_params_and_values(self):
        t = ResultTable("x")
        row = t.add(n=5, p=2, seconds=0.1, utilization=0.9, smp_seconds=0.5)
        assert row.params == {"n": 5, "p": 2}
        assert set(row.values) == {"seconds", "utilization", "smp_seconds"}

    def test_where_filters(self):
        t = self.make()
        sub = t.where(p=2)
        assert len(sub) == 2
        assert all(r.params["p"] == 2 for r in sub.rows)

    def test_where_chains(self):
        t = self.make()
        assert len(t.where(p=1).where(n=100)) == 1

    def test_series_groups_and_sorts(self):
        t = self.make()
        series = t.series(x="n", y="seconds", group_by="p")
        assert set(series) == {1, 2}
        xs, ys = series[1]
        assert xs == [100, 200]
        assert ys == [2.0, 4.0]

    def test_column(self):
        t = self.make()
        assert t.column("n") == [100, 100, 200, 200]

    def test_to_text_renders_all_rows(self):
        t = self.make()
        text = t.to_text(["n", "p", "seconds"])
        lines = text.splitlines()
        assert len(lines) == 2 + len(t)
        assert "seconds" in lines[0]

    def test_to_text_missing_column_blank(self):
        t = ResultTable("x")
        t.add(n=1, seconds=0.5)
        text = t.to_text(["n", "ghost"])
        assert "ghost" in text

    def test_to_text_requires_columns(self):
        with pytest.raises(ConfigurationError):
            ResultTable("x").to_text([])


class TestAddKeyCollisions:
    def test_same_key_as_param_and_value_raises(self):
        t = ResultTable("x")
        with pytest.raises(ConfigurationError) as exc:
            t.add(params={"seconds": 1}, values={"seconds": 2.0})
        assert "seconds" in str(exc.value)
        assert "x" in str(exc.value)  # names the offending table

    def test_kwarg_colliding_with_explicit_param_raises(self):
        t = ResultTable("x")
        with pytest.raises(ConfigurationError):
            t.add(params={"utilization": 0.5}, utilization=0.9)

    def test_explicit_split_allows_nonstandard_value_keys(self):
        t = ResultTable("x")
        row = t.add(params={"n": 4}, values={"t_m": 1.25})
        assert row.params == {"n": 4} and row.values == {"t_m": 1.25}

    def test_no_row_appended_on_collision(self):
        t = ResultTable("x")
        with pytest.raises(ConfigurationError):
            t.add(params={"n": 1}, values={"n": 2.0})
        assert len(t.rows) == 0
