"""Tests for the ⟨T_M; T_C; B⟩ cost model (repro.core.cost)."""

import numpy as np
import pytest

from repro.core.cost import CostTriplet, StepCost, merge_steps, summarize
from repro.errors import ConfigurationError


class TestStepCostConstruction:
    def test_scalar_counts_divide_evenly(self):
        s = StepCost(name="x", p=4, contig=100.0, noncontig=8.0, ops=40.0)
        assert np.allclose(s.contig, 25.0)
        assert np.allclose(s.noncontig, 2.0)
        assert np.allclose(s.ops, 10.0)

    def test_array_counts_kept_verbatim(self):
        s = StepCost(name="x", p=2, noncontig=np.array([3.0, 7.0]))
        assert s.noncontig.tolist() == [3.0, 7.0]

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            StepCost(name="x", p=2, contig=np.array([1.0, 2.0, 3.0]))

    def test_zero_processors_rejected(self):
        with pytest.raises(ConfigurationError):
            StepCost(name="x", p=0)

    def test_negative_barriers_rejected(self):
        with pytest.raises(ConfigurationError):
            StepCost(name="x", p=1, barriers=-1)

    def test_traces_must_match_processor_count(self):
        with pytest.raises(ConfigurationError):
            StepCost(name="x", p=2, traces=[np.array([1, 2])])

    def test_write_fields_default_zero(self):
        s = StepCost(name="x", p=2)
        assert np.allclose(s.contig_writes, 0.0)
        assert np.allclose(s.noncontig_writes, 0.0)


class TestStepCostDerived:
    def test_total_accesses_sums_reads_and_writes(self):
        s = StepCost(
            name="x", p=2, contig=10.0, noncontig=6.0, contig_writes=4.0, noncontig_writes=2.0
        )
        assert s.total_accesses == pytest.approx(22.0)

    def test_max_noncontig_includes_writes(self):
        s = StepCost(
            name="x",
            p=2,
            noncontig=np.array([5.0, 1.0]),
            noncontig_writes=np.array([0.0, 10.0]),
        )
        assert s.max_noncontig == pytest.approx(11.0)

    def test_effective_parallelism_explicit(self):
        s = StepCost(name="x", p=1, parallelism=64)
        assert s.effective_parallelism == 64.0

    def test_effective_parallelism_defaults_to_work(self):
        s = StepCost(name="x", p=1, contig=10.0, ops=5.0)
        assert s.effective_parallelism == pytest.approx(15.0)

    def test_effective_parallelism_at_least_one(self):
        s = StepCost(name="x", p=1)
        assert s.effective_parallelism >= 1.0

    def test_scaled_multiplies_work_not_barriers(self):
        s = StepCost(name="x", p=2, contig=10.0, noncontig=4.0, ops=6.0, barriers=3,
                     hotspot_ops=8)
        t = s.scaled(2.0)
        assert np.allclose(t.contig, s.contig * 2)
        assert np.allclose(t.noncontig, s.noncontig * 2)
        assert t.barriers == 3
        assert t.hotspot_ops == 16

    def test_scaled_drops_traces(self):
        s = StepCost(name="x", p=1, traces=[np.array([1, 2, 3])])
        assert s.scaled(2.0).traces is None


class TestSummarize:
    def test_triplet_accumulates_max_per_step(self):
        steps = [
            StepCost(name="a", p=2, noncontig=np.array([4.0, 6.0]),
                     ops=np.array([10.0, 2.0]), barriers=1),
            StepCost(name="b", p=2, noncontig=np.array([1.0, 1.0]),
                     ops=np.array([3.0, 5.0]), barriers=2),
        ]
        t = summarize(steps)
        assert t.t_m == pytest.approx(7.0)  # 6 + 1
        assert t.t_c == pytest.approx(15.0)  # 10 + 5
        assert t.b == 3

    def test_empty_is_zero(self):
        t = summarize([])
        assert (t.t_m, t.t_c, t.b) == (0.0, 0.0, 0)

    def test_triplet_addition(self):
        a = CostTriplet(1.0, 2.0, 3)
        b = CostTriplet(10.0, 20.0, 30)
        c = a + b
        assert (c.t_m, c.t_c, c.b) == (11.0, 22.0, 33)


class TestMergeSteps:
    def test_work_sums_and_barriers_sum(self):
        steps = [
            StepCost(name="a", p=2, contig=4.0, noncontig=2.0, ops=6.0, barriers=1),
            StepCost(name="b", p=2, contig=6.0, noncontig=8.0, ops=4.0, barriers=2),
        ]
        m = merge_steps("ab", steps)
        assert m.name == "ab"
        assert float(m.contig.sum()) == pytest.approx(10.0)
        assert float(m.noncontig.sum()) == pytest.approx(10.0)
        assert m.barriers == 3

    def test_traces_concatenated_when_all_present(self):
        steps = [
            StepCost(name="a", p=1, traces=[np.array([1, 2])]),
            StepCost(name="b", p=1, traces=[np.array([3])]),
        ]
        m = merge_steps("ab", steps)
        assert m.traces[0].tolist() == [1, 2, 3]

    def test_traces_dropped_when_any_missing(self):
        steps = [
            StepCost(name="a", p=1, traces=[np.array([1])]),
            StepCost(name="b", p=1),
        ]
        assert merge_steps("ab", steps).traces is None

    def test_mixed_p_rejected(self):
        steps = [StepCost(name="a", p=1), StepCost(name="b", p=2)]
        with pytest.raises(ConfigurationError):
            merge_steps("ab", steps)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_steps("x", [])


class TestRedistributed:
    def test_totals_preserved(self):
        s = StepCost(
            name="x", p=4, contig=100.0, noncontig=60.0, ops=40.0,
            contig_writes=20.0, noncontig_writes=12.0, barriers=2,
            parallelism=500, working_set=1000, hotspot_ops=7,
        )
        r = s.redistributed(8)
        assert r.p == 8
        assert float(r.contig.sum()) == pytest.approx(100.0)
        assert float(r.noncontig.sum()) == pytest.approx(60.0)
        assert float(r.noncontig_writes.sum()) == pytest.approx(12.0)
        assert r.barriers == 2
        assert r.parallelism == 500
        assert r.working_set == 1000
        assert r.hotspot_ops == 7

    def test_even_split(self):
        s = StepCost(name="x", p=1, noncontig=80.0)
        r = s.redistributed(4)
        assert np.allclose(r.noncontig, 20.0)

    def test_traces_dropped(self):
        s = StepCost(name="x", p=1, traces=[np.array([1, 2])])
        assert s.redistributed(2).traces is None

    def test_machine_timing_agrees_for_scalar_steps(self):
        """For evenly-split steps, rerunning an algorithm at p and
        redistributing a p=1 run must give identical model times."""
        from repro.core.smp_machine import SMPMachine

        base = StepCost(name="x", p=1, contig=1000.0, noncontig=400.0,
                        ops=600.0, barriers=1, parallelism=100, working_set=2000)
        direct = StepCost(name="x", p=4, contig=1000.0, noncontig=400.0,
                          ops=600.0, barriers=1, parallelism=100, working_set=2000)
        m = SMPMachine(p=4)
        assert m.step_time(base.redistributed(4)).cycles == pytest.approx(
            m.step_time(direct).cycles
        )
