"""Tests for the backend registry and the five built-in backends."""

import dataclasses

import pytest

from repro import backends
from repro.backends import Workload, algorithms_for, create, describe, names, register
from repro.backends.base import canonical_json
from repro.errors import ConfigurationError

BUILTINS = ("cluster-model", "mta-engine", "mta-model", "smp-engine", "smp-model")


class TestRegistry:
    def test_all_five_builtins_registered(self):
        assert set(BUILTINS) <= set(names())

    def test_names_sorted(self):
        assert names() == sorted(names())

    def test_create_unknown_raises_with_candidates(self):
        with pytest.raises(ConfigurationError) as exc:
            create("mta-mode")
        assert "mta-mode" in str(exc.value)
        assert "mta-model" in str(exc.value)  # lists what IS registered

    def test_describe_rows(self):
        rows = {r["name"]: r for r in describe()}
        assert rows["smp-model"]["level"] == "model"
        assert rows["smp-engine"]["level"] == "engine"
        assert "rank" in rows["cluster-model"]["kinds"]
        assert rows["mta-model"]["description"]

    def test_duplicate_register_raises(self):
        with pytest.raises(ConfigurationError):
            register("smp-model", lambda: None)

    def test_replace_allows_reregistration(self):
        sentinel = object()
        register("test-backend", lambda: sentinel, description="v1")
        try:
            register("test-backend", lambda: sentinel, replace=True, description="v2")
            assert create("test-backend") is sentinel
        finally:
            backends.registry._REGISTRY.pop("test-backend", None)


class TestWorkload:
    def test_canonical_round_trip(self):
        w = Workload("rank", 4, 7, {"n": 100, "list": "random"}, {"algorithm": "wyllie"})
        assert Workload.from_dict(w.canonical()) == w

    def test_canonical_is_json_stable(self):
        a = Workload("cc", params={"n": 10, "m": 20})
        b = Workload("cc", params={"m": 20, "n": 10})
        assert canonical_json(a.canonical()) == canonical_json(b.canonical())
        assert a.digest() == b.digest()

    def test_digest_changes_with_options(self):
        a = Workload("rank", params={"n": 64})
        b = Workload("rank", params={"n": 64}, options={"algorithm": "wyllie"})
        assert a.digest() != b.digest()

    def test_unsupported_kind_raises(self):
        with pytest.raises(ConfigurationError) as exc:
            create("smp-engine").run(Workload("tree", params={"leaves": 8}))
        assert "does not support" in str(exc.value)

    def test_algorithms_for_lists_registered_kernels(self):
        assert "helman-jaja" in algorithms_for("rank")
        assert "sv-smp" in algorithms_for("cc")


class TestEveryBackendRuns:
    """Every workload kind runs on every compatible backend through
    Backend.run and produces a well-formed RunSummary."""

    CASES = [
        ("smp-model", Workload("rank", 2, 1, {"n": 512, "list": "random"})),
        ("mta-model", Workload("rank", 2, 1, {"n": 512, "list": "random"})),
        ("cluster-model", Workload("rank", 2, 1, {"n": 512, "list": "random"})),
        ("smp-engine", Workload("rank", 2, 1, {"n": 96, "list": "random"}, {"s": 8})),
        (
            "mta-engine",
            Workload("rank", 2, 1, {"n": 128, "list": "random"},
                     {"streams_per_proc": 8, "nodes_per_walk": 4}),
        ),
        ("smp-model", Workload("cc", 2, 1, {"graph": "random", "n": 128, "m": 512})),
        ("mta-model", Workload("cc", 2, 1, {"graph": "random", "n": 128, "m": 512})),
        ("cluster-model", Workload("cc", 2, 1, {"graph": "random", "n": 128, "m": 512})),
        (
            "smp-engine",
            Workload("cc", 2, 1, {"graph": "random", "n": 48, "m": 128},
                     {"max_iter": 16}),
        ),
        (
            "mta-engine",
            Workload("cc", 2, 1, {"graph": "random", "n": 48, "m": 128},
                     {"streams_per_proc": 8, "max_iter": 16}),
        ),
        ("smp-model", Workload("bfs", 2, 1, {"graph": "random", "n": 128, "m": 512})),
        ("mta-model", Workload("msf", 2, 1, {"graph": "random", "n": 64, "m": 256})),
        ("cluster-model", Workload("tree", 2, 1, {"leaves": 64})),
        (
            "mta-engine",
            Workload("chase", 1, 0, {"chasers": 4},
                     {"steps": 4, "streams_per_proc": 8}),
        ),
    ]

    @pytest.mark.parametrize(
        "backend_name,workload",
        CASES,
        ids=[f"{b}-{w.kind}" for b, w in CASES],
    )
    def test_runs_and_reports(self, backend_name, workload):
        summary = create(backend_name).run(workload)
        assert summary.cycles > 0
        assert 0.0 <= summary.utilization <= 1.0
        d = summary.to_dict()
        assert d["detail"]["backend"] == backend_name
        # the record survives a canonical JSON round trip (cacheable)
        assert canonical_json(d)

    def test_native_algorithm_defaults(self):
        smp = create("smp-model").run(Workload("rank", 2, 1, {"n": 256, "list": "random"}))
        mta = create("mta-model").run(Workload("rank", 2, 1, {"n": 256, "list": "random"}))
        assert smp.detail["algorithm"] == "helman-jaja"
        assert mta.detail["algorithm"] == "mta-walks"


class TestAnalyticConfigOverrides:
    def test_flat_override(self):
        b = create("smp-model", config={"name": "E4500-custom"})
        assert b.config.name == "E4500-custom"

    def test_nested_dataclass_override(self):
        b = create("smp-model", config={"l2": {"size_words": 1 << 18, "line_words": 16}})
        assert b.config.l2.size_words == 1 << 18
        # untouched nested fields keep their defaults
        default_l2 = create("smp-model").config.l2
        changed = {"size_words", "line_words"}
        for f in dataclasses.fields(default_l2):
            if f.name not in changed:
                assert getattr(b.config.l2, f.name) == getattr(default_l2, f.name)

    def test_bad_override_key_raises(self):
        with pytest.raises(ConfigurationError):
            create("smp-model", config={"no_such_field": 1})

    def test_bad_nested_key_raises(self):
        with pytest.raises(ConfigurationError):
            create("smp-model", config={"l2": {"no_such_field": 1}})

    def test_override_changes_timing(self):
        w = Workload("rank", 1, 5, {"n": 1 << 15, "list": "random"})
        base = create("smp-model").run(w)
        tiny_l2 = create("smp-model", config={"l2": {"size_words": 1 << 8}}).run(w)
        assert tiny_l2.cycles > base.cycles

    def test_instances_are_independent(self):
        a = create("smp-model")
        b = create("smp-model", config={"name": "other"})
        assert a.config.name != b.config.name
        assert dataclasses.is_dataclass(a.config)


class TestShardedExecution:
    """The ``shards`` workload option through the backend layer."""

    def _cc(self, **options):
        return Workload(
            "cc", 4, 1, {"graph": "random", "n": 48, "m": 128},
            {"streams_per_proc": 8, "edges_per_chunk": 8, "max_iter": 16,
             "shard_executor": "inline", **options},
        )

    def test_registry_capability_flags(self):
        rows = {r["name"]: r for r in describe()}
        assert rows["mta-engine"]["shardable"]
        assert rows["mta-next-engine"]["shardable"]
        assert not rows["smp-engine"]["shardable"]
        assert not rows["mta-model"]["shardable"]

    def test_cc_sharded_reports_shard_detail(self):
        plain = create("mta-engine").run(self._cc())
        sharded = create("mta-engine").run(self._cc(shards=2))
        assert sharded.detail["shards"] == 2
        assert sharded.detail["shard"]["msgs_sent"] > 0
        assert sharded.detail["shard"]["k"] == 2
        assert sharded.detail["iterations"] >= 1
        # same input description in both summaries
        assert (sharded.detail["n"], sharded.detail["m"]) == (
            plain.detail["n"], plain.detail["m"])

    def test_chase_sharded_matches_unsharded(self):
        w = Workload("chase", 4, 0, {"chasers": 4},
                     {"steps": 4, "streams_per_proc": 8,
                      "shard_executor": "inline"})
        plain = create("mta-engine").run(w)
        ws = Workload("chase", 4, 0, {"chasers": 4},
                      {"steps": 4, "streams_per_proc": 8,
                       "shard_executor": "inline", "shards": 4})
        sharded = create("mta-engine").run(ws)
        # pointer chases are all remote-capable loads; with the default
        # remote latency equal to mem latency the cycles must agree
        assert sharded.cycles == plain.cycles
        assert sharded.detail["shards"] == 4

    def test_smp_engine_rejects_shards(self):
        w = Workload("cc", 4, 1, {"graph": "random", "n": 48, "m": 128},
                     {"shards": 2})
        with pytest.raises(ConfigurationError):
            create("smp-engine").run(w)

    def test_rank_rejects_shards(self):
        w = Workload("rank", 4, 1, {"n": 128, "list": "random"},
                     {"shards": 2, "streams_per_proc": 8})
        with pytest.raises(ConfigurationError):
            create("mta-engine").run(w)

    def test_check_rejects_shards(self):
        w = self._cc(shards=2, check=True)
        with pytest.raises(ConfigurationError):
            create("mta-engine").run(w)
