"""Tests for the Helman–JáJá SMP algorithm (repro.lists.helman_jaja)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lists.generate import clustered_list, ordered_list, random_list, true_ranks
from repro.lists.helman_jaja import helman_jaja_prefix, rank_helman_jaja
from repro.lists.prefix import ADD, MAX, MIN
from repro.lists.sequential import prefix_sequential


class TestRankingCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 100, 4096])
    @pytest.mark.parametrize("make", [ordered_list, lambda n: random_list(n, 42)])
    def test_ranks_match_truth(self, n, make):
        nxt = make(n)
        run = rank_helman_jaja(nxt, p=4, rng=0)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("p", [1, 2, 3, 8])
    def test_independent_of_processor_count(self, p):
        nxt = random_list(2000, 7)
        run = rank_helman_jaja(nxt, p=p, rng=0)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("s", [1, 2, 5, 64, 1000])
    def test_independent_of_sublist_count(self, s):
        nxt = random_list(1500, 3)
        run = rank_helman_jaja(nxt, p=2, s=s, rng=0)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_clustered_lists(self):
        nxt = clustered_list(1000, block=32, rng=5)
        run = rank_helman_jaja(nxt, p=4, rng=0)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_block_schedule_still_correct(self):
        nxt = random_list(800, 11)
        run = rank_helman_jaja(nxt, p=4, rng=0, schedule="block")
        assert np.array_equal(run.ranks, true_ranks(nxt))


class TestGenericPrefix:
    def test_add_with_values(self, rng):
        nxt = random_list(500, rng)
        values = rng.integers(-50, 50, 500)
        run = helman_jaja_prefix(nxt, p=4, values=values, rng=0)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, ADD))

    def test_max_prefix(self, rng):
        nxt = random_list(300, rng)
        values = rng.integers(0, 10_000, 300)
        run = helman_jaja_prefix(nxt, p=3, values=values, op=MAX, rng=1)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, MAX))

    def test_min_prefix(self, rng):
        nxt = random_list(300, rng)
        values = rng.integers(0, 10_000, 300)
        run = helman_jaja_prefix(nxt, p=3, values=values, op=MIN, rng=1)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, MIN))


class TestInstrumentation:
    def test_five_steps_with_barriers(self):
        run = rank_helman_jaja(random_list(500, 1), p=2, rng=0)
        names = [s.name for s in run.steps]
        assert names == [
            "hj.1.find-head",
            "hj.2.select-sublists",
            "hj.3.traverse-sublists",
            "hj.4.sublist-prefix",
            "hj.5.combine",
        ]
        assert run.triplet.b == 5

    def test_step3_work_accounts_for_every_node(self):
        n = 1000
        run = rank_helman_jaja(random_list(n, 2), p=4, rng=0)
        s3 = run.steps[2]
        total = float(
            s3.contig.sum() + s3.noncontig.sum()
            + s3.contig_writes.sum() + s3.noncontig_writes.sum()
        )
        assert total == pytest.approx(4 * n)  # 2 reads + 2 writes per node

    def test_contiguity_measured_from_data(self):
        ordered = rank_helman_jaja(ordered_list(2000), p=2, rng=0)
        rand = rank_helman_jaja(random_list(2000, 3), p=2, rng=0)
        assert ordered.stats["contig_fraction"] > 0.95
        assert rand.stats["contig_fraction"] < 0.05

    def test_t_m_scales_with_n_over_p(self):
        """The paper's bound: T_M ≈ n/p for the random case."""
        n = 4000
        run = rank_helman_jaja(random_list(n, 5), p=4, rng=0)
        t_m = run.triplet.t_m
        # 4 accesses per node, max processor ≈ n/p nodes with 8p sublists
        assert t_m <= 4 * (n / 4) * 1.6

    def test_dynamic_schedule_balances_better_than_block(self):
        nxt = random_list(5000, 9)
        dyn = rank_helman_jaja(nxt, p=4, rng=0, schedule="dynamic")
        blk = rank_helman_jaja(nxt, p=4, rng=0, schedule="block")
        assert dyn.stats["load_imbalance"] <= blk.stats["load_imbalance"] + 1e-9

    def test_default_sublists_is_8p(self):
        run = rank_helman_jaja(random_list(10_000, 4), p=4, rng=0)
        assert run.stats["s"] <= 8 * 4
        assert run.stats["s"] >= 8 * 4 - 2  # head-collision dedup may drop a couple


class TestTraces:
    def test_traces_attach_to_dominant_steps(self):
        run = rank_helman_jaja(random_list(600, 1), p=2, rng=0, collect_traces=True)
        s3, s5 = run.steps[2], run.steps[4]
        assert s3.traces is not None and len(s3.traces) == 2
        assert s5.traces is not None and len(s5.traces) == 2

    def test_step3_trace_covers_every_node_twice(self):
        n = 400
        run = rank_helman_jaja(random_list(n, 1), p=2, rng=0, collect_traces=True)
        s3 = run.steps[2]
        assert sum(len(t) for t in s3.traces) == 2 * n

    def test_trace_addresses_fall_in_address_space(self):
        run = rank_helman_jaja(random_list(300, 1), p=2, rng=0, collect_traces=True)
        hi = run.stats["address_space_words"]
        for s in run.steps:
            if s.traces is None:
                continue
            for t in s.traces:
                if len(t):
                    assert t.min() >= 0
                    assert t.max() < hi


class TestErrors:
    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_helman_jaja(np.empty(0, dtype=np.int64), p=1)

    def test_bad_p_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_helman_jaja(ordered_list(10), p=0)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_helman_jaja(ordered_list(10), p=1, schedule="magic")

    def test_values_shape_checked(self):
        with pytest.raises(ConfigurationError):
            helman_jaja_prefix(ordered_list(10), p=1, values=np.ones(5))
