"""Tests for randomized independent-set ranking (repro.lists.independent_set)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MTAMachine, SMPMachine
from repro.errors import ConfigurationError
from repro.lists.generate import list_from_order, ordered_list, random_list, true_ranks
from repro.lists.independent_set import rank_independent_set


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 100, 5000])
    def test_ranks_match_truth(self, n):
        nxt = random_list(n, 4)
        run = rank_independent_set(nxt, p=2, rng=0)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_ordered_list(self):
        nxt = ordered_list(2000)
        run = rank_independent_set(nxt, rng=1)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("stub", [2, 8, 512])
    def test_any_stub_threshold(self, stub):
        nxt = random_list(1000, 2)
        run = rank_independent_set(nxt, rng=3, stub=stub)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("seed", range(6))
    def test_any_coin_sequence(self, seed):
        nxt = random_list(700, 9)
        run = rank_independent_set(nxt, rng=seed)
        assert np.array_equal(run.ranks, true_ranks(nxt))


class TestComplexity:
    def test_rounds_logarithmic(self):
        n = 1 << 14
        run = rank_independent_set(random_list(n, 1), rng=0)
        assert run.stats["rounds"] <= 4 * math.ceil(math.log2(n))

    def test_geometric_shrinkage(self):
        run = rank_independent_set(random_list(1 << 13, 1), rng=0)
        removed = run.stats["removed_per_round"]
        # the first round removes roughly a quarter of the nodes
        assert removed[0] > (1 << 13) / 6

    def test_total_work_linear(self):
        """T_M is O(n): geometric round sizes sum to a constant factor."""
        n = 1 << 13
        run = rank_independent_set(random_list(n, 1), rng=0)
        assert run.triplet.t_m < 25 * n

    def test_timeable_on_both_machines(self):
        run = rank_independent_set(random_list(4000, 2), p=4, rng=0)
        assert MTAMachine(p=4).run(run.steps).seconds > 0
        assert SMPMachine(p=4).run(run.steps).seconds > 0


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_independent_set(np.empty(0, dtype=np.int64))

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            rank_independent_set(ordered_list(4), p=0)

    def test_bad_stub(self):
        with pytest.raises(ConfigurationError):
            rank_independent_set(ordered_list(4), stub=1)


@settings(max_examples=40, deadline=None)
@given(
    order=st.integers(min_value=1, max_value=200).flatmap(
        lambda n: st.permutations(list(range(n)))
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_matches_truth(order, seed):
    nxt = list_from_order(np.array(order))
    run = rank_independent_set(nxt, p=3, rng=seed, stub=4)
    assert np.array_equal(run.ranks, true_ranks(nxt))
