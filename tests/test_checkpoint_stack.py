"""Checkpoint/resume through the full stack above the kernel.

Layers covered, top to bottom:

* **backends** — the ``checkpoint`` workload option: periodic artifacts,
  auto-resume from the newest artifact, explicit (strict) resume,
  ``fresh``, stale-artifact skipping, and the checker incompatibility;
* **cache** — ``SweepCache.key_for`` ignores the ``checkpoint`` option
  (resumed jobs share keys and records with uninterrupted ones) and the
  LRU prune over checkpoint artifacts;
* **runner** — a cancelled sweep drains the in-flight job into a
  checkpoint, and resubmitting reuses cache entries *and* checkpoints
  without recomputing, byte-identical to an uninterrupted sweep;
* **service protocol / server** — ``checkpoint`` / ``resume_from``
  parsing, submission-key stability and separation, server-default
  merging;
* **CLI** — ``repro run --checkpoint-every/--resume``, ``repro
  checkpoint ls/info/rm``, ``repro cache --prune --max-checkpoints``,
  and the ``ckpt`` column of ``repro backends``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.backends import create, describe
from repro.backends.base import Workload
from repro.cli import main
from repro.core.cache import SweepCache
from repro.core.runner import Job, SweepCancelled, run_jobs
from repro.errors import CheckpointError, ConfigurationError
from repro.service.protocol import (
    ProtocolError,
    Submission,
    parse_submission,
    submission_key,
)
from repro.service.server import ExperimentService
from repro.sim.checkpoint import CheckpointStore

# ---------------------------------------------------------------------------
# backend layer: the ``checkpoint`` workload option
# ---------------------------------------------------------------------------


def _rank_workload(backend="smp-engine", seed=3, **options):
    opts = {"streams_per_proc": 8} if backend == "mta-engine" else {}
    opts.update(options)
    return Workload(
        kind="rank", p=2, seed=seed, params={"n": 400, "list": "random"}, options=opts
    )


@pytest.mark.parametrize("backend_name", ["smp-engine", "mta-engine"])
def test_backend_checkpoint_and_auto_resume(backend_name, tmp_path, capsys):
    backend = create(backend_name)
    baseline = backend.run(_rank_workload(backend_name)).to_dict()

    spec = {"every": 200, "dir": str(tmp_path)}
    first = backend.run(_rank_workload(backend_name, checkpoint=spec)).to_dict()
    assert first == baseline
    artifacts = list(tmp_path.glob("*/*.ckpt"))
    assert artifacts, "periodic checkpointing must persist artifacts"

    # second run auto-resumes the newest artifact: completed runs replay,
    # the in-flight one restores, and the summary stays byte-identical
    second = backend.run(_rank_workload(backend_name, checkpoint=spec)).to_dict()
    assert second == baseline
    assert "resumed from checkpoint" in capsys.readouterr().err


def test_backend_explicit_resume_and_fresh(tmp_path, capsys):
    backend = create("smp-engine")
    baseline = backend.run(_rank_workload()).to_dict()
    spec = {"every": 200, "dir": str(tmp_path)}
    backend.run(_rank_workload(checkpoint=spec))
    store = CheckpointStore(tmp_path)
    cid = store.entries()[-1][0].stem
    capsys.readouterr()

    explicit = dict(spec, resume=cid[:12])
    got = backend.run(_rank_workload(checkpoint=explicit)).to_dict()
    assert got == baseline
    assert "resumed from checkpoint" in capsys.readouterr().err

    # ``fresh`` ignores existing artifacts entirely
    fresh = backend.run(_rank_workload(checkpoint=dict(spec, fresh=True))).to_dict()
    assert fresh == baseline
    assert "resumed" not in capsys.readouterr().err

    # an explicit resume ref that matches nothing is a hard error
    with pytest.raises(CheckpointError, match="no checkpoint"):
        backend.run(_rank_workload(checkpoint=dict(spec, resume="ffff" * 16)))


def test_backend_skips_stale_artifacts_with_warning(tmp_path, capsys):
    backend = create("smp-engine")
    baseline = backend.run(_rank_workload()).to_dict()
    spec = {"every": 200, "dir": str(tmp_path)}
    backend.run(_rank_workload(checkpoint=spec))
    capsys.readouterr()

    # corrupt every artifact's payload: headers still parse (so the
    # store still offers them) but loading fails validation
    for path in tmp_path.glob("*/*.ckpt"):
        path.write_bytes(path.read_bytes()[:-8])

    got = backend.run(_rank_workload(checkpoint=spec)).to_dict()
    assert got == baseline  # fell back to a full re-run
    assert "ignoring stale checkpoint" in capsys.readouterr().err


def test_checkpoint_incompatible_with_concurrency_checker(tmp_path):
    backend = create("mta-engine")
    wl = _rank_workload(
        "mta-engine", checkpoint={"every": 200, "dir": str(tmp_path)}, check="on"
    )
    with pytest.raises(ConfigurationError, match="concurrency analysis"):
        backend.run(wl)


def test_engine_backends_advertise_checkpoint_capability():
    rows = {r["name"]: r["checkpoint"] for r in describe()}
    assert rows["smp-engine"] is True
    assert rows["mta-engine"] is True
    # analytic model backends have no kernel to snapshot
    assert rows["smp-model"] is False
    assert rows["mta-model"] is False


# ---------------------------------------------------------------------------
# cache layer
# ---------------------------------------------------------------------------


def test_cache_key_ignores_checkpoint_option():
    plain = _rank_workload().canonical()
    ckpt = _rank_workload(checkpoint={"every": 5, "dir": "/x"}).canonical()
    assert SweepCache.key_for(plain, "smp-engine", {}) == SweepCache.key_for(
        ckpt, "smp-engine", {}
    )
    other = _rank_workload(streams_per_proc=4).canonical()
    assert SweepCache.key_for(plain, "smp-engine", {}) != SweepCache.key_for(
        other, "smp-engine", {}
    )


def test_prune_checkpoints_lru(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    cache = SweepCache(tmp_path)
    root = cache.checkpoint_root()
    assert root == tmp_path / "checkpoints"
    group = root / "job0"
    group.mkdir(parents=True)
    now = time.time()
    for i in range(5):
        p = group / f"{i:064x}.ckpt"
        p.write_bytes(b"x" * 100)
        os.utime(p, (now + i, now + i))  # distinct mtimes, oldest first

    assert len(cache.checkpoint_entries()) == 5
    assert cache.checkpoint_size_bytes() == 500

    evicted, freed = cache.prune_checkpoints(max_entries=2)
    assert (evicted, freed) == (3, 300)
    assert cache.evictions == 3
    survivors = sorted(p.name for p in group.glob("*.ckpt"))
    assert survivors == [f"{i:064x}.ckpt" for i in (3, 4)]  # newest kept

    evicted, freed = cache.prune_checkpoints(max_bytes=50)
    assert evicted == 2 and not list(group.glob("*.ckpt"))
    assert cache.prune_checkpoints() == (0, 0)  # no caps: no-op


# ---------------------------------------------------------------------------
# runner layer: cancel -> drain -> resubmit without recomputation
# ---------------------------------------------------------------------------


def _jobs():
    return [
        Job(
            workload=Workload(
                kind="rank",
                p=2,
                seed=seed,
                params={"n": 2000, "list": "random"},
                options={"streams_per_proc": 8},
            ),
            backend="mta-engine",
        )
        for seed in (1, 2)
    ]


def test_cancelled_sweep_resumes_without_recomputing(tmp_path, capsys):
    ckdir = tmp_path / "ck"
    baseline = run_jobs(_jobs(), cache=SweepCache(tmp_path / "cache-base"))

    # cancel once job 2 is *in flight*: the serial runner polls the hook
    # before each job and (via the checkpoint ``_stop`` plumbing) at
    # every snapshot boundary inside a run — return True only on a poll
    # after job 1 finished AND job 2 was allowed to start, so job 2
    # drains mid-run into a checkpoint rather than being skipped
    cache = SweepCache(tmp_path / "cache")
    state = {"job1_done": False, "polls_after": 0}

    def progress(done, total, job, cached):
        if done >= 1:
            state["job1_done"] = True

    def cancel():
        if not state["job1_done"]:
            return False
        state["polls_after"] += 1
        return state["polls_after"] > 1  # first poll is the pre-job check

    with pytest.raises(SweepCancelled) as exc_info:
        run_jobs(
            _jobs(),
            cache=cache,
            cancel=cancel,
            progress=progress,
            checkpoint={"every": 1000, "dir": str(ckdir)},
        )
    done = [r for r in exc_info.value.results if not r.cancelled]
    assert len(done) == 1
    assert list(ckdir.glob("*/*.ckpt")), "drain must persist the in-flight job"

    # resubmit: job 1 from cache, job 2 resumed from its artifact —
    # records byte-identical to the uninterrupted sweep
    capsys.readouterr()
    again = run_jobs(_jobs(), cache=cache, checkpoint={"every": 1000, "dir": str(ckdir)})
    assert again[0].cached
    assert not again[1].cached
    assert "resumed from checkpoint" in capsys.readouterr().err
    for b, a in zip(baseline, again, strict=False):
        assert a.record == b.record
        assert a.key == b.key

    # the resumed record was cached under the plain key: a third sweep
    # with no checkpointing at all is served entirely from cache
    third = run_jobs(_jobs(), cache=cache)
    assert all(r.cached for r in third)


# ---------------------------------------------------------------------------
# service protocol + server defaults
# ---------------------------------------------------------------------------

_JOB_BODY = {
    "workload": {"kind": "rank", "p": 2, "params": {"n": 64, "list": "random"}},
    "backend": "smp-model",
}


def test_protocol_parses_checkpoint_spec():
    sub = parse_submission({**_JOB_BODY, "checkpoint": {"every": 5, "dir": "/x"}})
    assert sub.checkpoint == {"every": 5, "dir": "/x"}
    assert "checkpoint" in sub.describe()

    sub = parse_submission({**_JOB_BODY, "resume_from": "abcd1234"})
    assert sub.checkpoint == {"resume": "abcd1234"}

    # shorthand merges into (and overrides) the spec's own resume
    sub = parse_submission(
        {**_JOB_BODY, "checkpoint": {"every": 2, "resume": "old"}, "resume_from": "new"}
    )
    assert sub.checkpoint == {"every": 2, "resume": "new"}

    assert parse_submission(dict(_JOB_BODY)).checkpoint is None


@pytest.mark.parametrize(
    "extra",
    [
        {"checkpoint": "notanobject"},
        {"checkpoint": {"every": 0}},
        {"checkpoint": {"every": True}},
        {"checkpoint": {"every": 5, "bogus": 1}},
        {"checkpoint": {"dir": ""}},
        {"checkpoint": {"resume": 7}},
        {"resume_from": ""},
        {"resume_from": 12},
    ],
)
def test_protocol_rejects_malformed_checkpoint(extra):
    with pytest.raises(ProtocolError):
        parse_submission({**_JOB_BODY, **extra})


def test_protocol_explicit_resume_requires_single_job():
    body = {"jobs": [dict(_JOB_BODY), dict(_JOB_BODY)], "resume_from": "abc"}
    with pytest.raises(ProtocolError, match="single-job"):
        parse_submission(body)
    # a batch *without* an explicit resume is fine (auto-resume per job)
    batch = parse_submission({"jobs": [dict(_JOB_BODY)] * 2, "checkpoint": {"every": 3}})
    assert len(batch.jobs) == 2


def test_submission_key_stable_without_checkpoint():
    plain = parse_submission(dict(_JOB_BODY))
    # no spec: the key is the historical jobs-only digest
    assert plain.key == submission_key(plain.jobs)
    assert plain.key == submission_key(plain.jobs, None)
    ck = parse_submission({**_JOB_BODY, "checkpoint": {"every": 5}})
    assert ck.key != plain.key  # resume/checkpoint submissions never coalesce
    assert isinstance(Submission(jobs=plain.jobs).key, str)


def test_server_merges_checkpoint_defaults():
    srv = ExperimentService(checkpoint_every=7, checkpoint_dir="/srv-ck")
    record = SimpleNamespace(submission=SimpleNamespace(checkpoint=None))
    assert srv._checkpoint_spec(record) == {"every": 7, "dir": "/srv-ck"}
    # the submission's own spec wins field by field
    record = SimpleNamespace(submission=SimpleNamespace(checkpoint={"every": 3}))
    assert srv._checkpoint_spec(record) == {"every": 3, "dir": "/srv-ck"}

    bare = ExperimentService()
    record = SimpleNamespace(submission=SimpleNamespace(checkpoint=None))
    assert bare._checkpoint_spec(record) is None

    with pytest.raises(ConfigurationError):
        ExperimentService(checkpoint_every=0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


_RUN_ARGS = [
    "run",
    "--workload",
    "rank",
    "--backend",
    "smp-engine",
    "--n",
    "400",
    "--p",
    "2",
]


def test_cli_checkpoint_flow(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ck"))

    assert main(_RUN_ARGS + ["--checkpoint-every", "200"]) == 0
    store = CheckpointStore(tmp_path / "ck")
    entries = store.entries()
    assert entries, "CLI run must persist artifacts"
    cid = entries[-1][0].stem
    capsys.readouterr()

    assert main(["checkpoint", "ls"]) == 0
    out = capsys.readouterr().out
    assert cid[:16] in out

    assert main(["checkpoint", "info", cid[:12]]) == 0
    out = capsys.readouterr().out
    assert '"magic": "repro-ckpt"' in out and cid in out

    # explicit resume (bypass the result cache so the engine really runs)
    assert main(_RUN_ARGS + ["--no-cache", "--resume", cid[:12]]) == 0
    captured = capsys.readouterr()
    assert "resumed from checkpoint" in captured.err

    assert main(["checkpoint", "rm", cid[:12]]) == 0
    assert not entries[-1][0].exists()


def test_cli_cache_prune_checkpoints(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "ck"))
    assert main(_RUN_ARGS + ["--checkpoint-every", "200"]) == 0
    store = CheckpointStore(tmp_path / "ck")
    total = len(store.entries())
    assert total >= 1
    capsys.readouterr()

    assert main(["cache", "--prune", "--max-checkpoints", "1"]) == 0
    out = capsys.readouterr().out
    assert len(store.entries()) == 1
    assert "checkpoint" in out


def test_cli_backends_lists_checkpoint_column(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    assert "ckpt" in out


def test_cli_checkpoint_ls_empty_store(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "nothing"))
    assert main(["checkpoint", "ls"]) == 0
    assert main(["checkpoint", "ls", "--dir", str(tmp_path / "also-nothing")]) == 0
