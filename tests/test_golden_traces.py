"""Golden-trace snapshots of three canonical contention scenarios.

Each scenario runs a tiny, fully deterministic thread program at
``op``-level tracing and compares the serialized JSONL trace byte for
byte against a checked-in snapshot under ``tests/golden/``.  The
snapshots pin down the engines' cycle-level behaviour — issue order,
serialization, wait intervals — so an unintended scheduling change
shows up as a trace diff, not just a cycle-count drift.

To regenerate after an *intended* engine change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

then review the diff like any other code change.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.obs import ContentionProfile, Tracer, jsonl_dumps, read_jsonl
from repro.sim import MTAEngine, SMPEngine, isa

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


def _check(name: str, tracer: Tracer) -> None:
    path = GOLDEN_DIR / f"{name}.jsonl"
    text = jsonl_dumps(tracer.events)
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
    assert path.exists(), f"golden trace missing; regenerate with REPRO_REGEN_GOLDEN=1 ({path})"
    assert text == path.read_text(), (
        f"trace for {name!r} deviates from the golden snapshot; if the engine "
        "change is intended, regenerate with REPRO_REGEN_GOLDEN=1 and review the diff"
    )
    # snapshots must stay loadable through the public reader
    assert read_jsonl(path) == tracer.events


# -- scenario 1: fetch-add hotspot --------------------------------------------------
# Streams on two MTA processors (and two SMP processors) hammer one
# counter cell; the cell serves one request per cycle, so concurrent
# requests serialize and the trace shows the stalls.  Two processors
# matter on the MTA: a single processor issues at most one instruction
# per cycle, which can never collide at the cell.


def _mta_fa_hotspot() -> tuple:
    t = Tracer(level="op")
    eng = MTAEngine(p=2, streams_per_proc=2, mem_latency=5, lookahead=2, tracer=t)
    eng.set_counter(64, 0)

    def worker():
        for _ in range(3):
            yield isa.fetch_add(64, 1)
            yield isa.compute(1)

    for _ in range(4):
        eng.spawn(worker())
    return eng.run("fa-hotspot"), t


def test_mta_fa_hotspot_golden():
    _, t = _mta_fa_hotspot()
    _check("mta_fa_hotspot", t)


def test_mta_fa_hotspot_profile():
    rep, _ = _mta_fa_hotspot()
    prof = ContentionProfile.from_report(rep)
    (addr, ops, stalls), = prof.hottest_fa_sites(1)
    assert addr == 64 and ops == 12
    assert stalls > 0  # 12 requests at one/cycle must serialize


def test_smp_fa_hotspot_golden():
    t = Tracer(level="op")
    eng = SMPEngine(p=2, tracer=t)
    eng.set_counter(64, 0)

    def program(proc):
        for _ in range(3):
            yield isa.fetch_add(64, 1)
            yield isa.compute(1)

    for i in range(2):
        eng.attach(program(i))
    rep = eng.run("fa-hotspot")
    assert rep.detail["fa_sites"][64][0] == 6
    _check("smp_fa_hotspot", t)


# -- scenario 2: full/empty producer-consumer (MTA only) ---------------------------
# A consumer blocks on an Empty word; the producer fills it after some
# compute. The golden trace pins the wait interval and the FIFO wakeup.


def _mta_producer_consumer() -> tuple:
    t = Tracer(level="op")
    eng = MTAEngine(p=1, streams_per_proc=4, mem_latency=5, tracer=t)

    def producer():
        yield isa.compute(10)
        yield isa.sync_store(128, 7)
        yield isa.compute(10)
        yield isa.sync_store(128, 8)

    def consumer():
        v1 = yield isa.sync_load_consume(128)
        yield isa.compute(1)
        v2 = yield isa.sync_load_consume(128)
        assert (v1, v2) == (7, 8)

    eng.spawn(consumer())  # spawned first so it demonstrably waits
    eng.spawn(producer())
    return eng.run("producer-consumer"), t


def test_mta_producer_consumer_golden():
    _, t = _mta_producer_consumer()
    _check("mta_producer_consumer", t)


def test_mta_producer_consumer_wait_histogram():
    rep, _ = _mta_producer_consumer()
    assert rep.detail["fe_wait_cycles"] > 0
    assert sum(rep.detail["fe_wait_hist"].values()) >= 1


# -- scenario 3: barrier join ------------------------------------------------------
# Threads with deliberately unequal work meet at a barrier; the golden
# trace pins each waiter's arrival-to-release interval.


def _mta_barrier_join() -> tuple:
    t = Tracer(level="op")
    eng = MTAEngine(p=1, streams_per_proc=4, mem_latency=5, barrier_latency=3, tracer=t)
    eng.register_barrier("join", 3)

    def worker(work):
        yield isa.compute(work)
        yield isa.barrier("join")
        yield isa.store(256)

    for work in (2, 8, 20):
        eng.spawn(worker(work))
    return eng.run("barrier-join"), t


def test_mta_barrier_join_golden():
    _, t = _mta_barrier_join()
    _check("mta_barrier_join", t)


def test_mta_barrier_join_stats():
    rep, _ = _mta_barrier_join()
    b = rep.detail["barrier_waits"]["join"]
    assert b["episodes"] == 3
    assert b["max_wait"] >= 18  # the 2-cycle thread waits for the 20-cycle one
    assert b["wait_cycles"] > b["max_wait"]


def test_smp_barrier_join_golden():
    t = Tracer(level="op")
    eng = SMPEngine(p=3, tracer=t)

    def program(proc):
        yield isa.compute(4 * (proc + 1) ** 2)
        yield isa.barrier("join")
        yield isa.store(4096 + 64 * proc)

    for i in range(3):
        eng.attach(program(i))
    rep = eng.run("barrier-join")
    waits = rep.detail["barrier_wait_cycles"]
    assert waits[0] > waits[2]  # the lightest processor waits longest
    _check("smp_barrier_join", t)


# -- partition invariant on every scenario ----------------------------------------


@pytest.mark.parametrize(
    "runner", [_mta_fa_hotspot, _mta_producer_consumer, _mta_barrier_join]
)
def test_phase_cycles_sum_to_total(runner):
    rep, _ = runner()
    assert sum(s.cycles for s in rep.phases) == rep.cycles
