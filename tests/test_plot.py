"""Tests for the ASCII plotter (repro.core.plot)."""

import pytest

from repro.core.plot import ascii_plot
from repro.errors import ConfigurationError


class TestAsciiPlot:
    def test_renders_all_series_markers(self):
        out = ascii_plot(
            {"a": ([1, 2, 3], [1, 2, 3]), "b": ([1, 2, 3], [3, 2, 1])},
            width=20,
            height=6,
        )
        assert "o" in out and "x" in out
        assert "o=a" in out and "x=b" in out

    def test_title_and_labels(self):
        out = ascii_plot(
            {"s": ([1, 2], [1, 2])}, title="Fig X", xlabel="n", ylabel="seconds"
        )
        assert out.startswith("Fig X")
        assert "seconds" in out
        assert "n:" in out

    def test_log_axes(self):
        out = ascii_plot(
            {"s": ([1, 10, 100], [1, 10, 100])}, logx=True, logy=True
        )
        assert "[log-log]" in out
        assert "100" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": ([0, 1], [1, 2])}, logx=True)

    def test_constant_series_ok(self):
        out = ascii_plot({"s": ([1, 2, 3], [5, 5, 5])})
        assert "o" in out

    def test_single_point(self):
        out = ascii_plot({"s": ([2], [3])})
        assert "o" in out

    def test_dimensions(self):
        out = ascii_plot({"s": ([1, 2], [1, 2])}, width=30, height=10)
        rows = [line for line in out.splitlines() if line.startswith("|")]
        assert len(rows) == 10
        assert all(len(r) == 31 for r in rows)

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": ([1], [1, 2])})
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": ([], [])})
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": ([1], [1])}, width=2)

    def test_points_land_at_corners(self):
        out = ascii_plot({"s": ([0, 10], [0, 10])}, width=10, height=5)
        rows = [line[1:] for line in out.splitlines() if line.startswith("|")]
        assert rows[0][-1] == "o"  # max at top-right
        assert rows[-1][0] == "o"  # min at bottom-left
