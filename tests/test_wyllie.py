"""Tests for Wyllie's pointer-jumping prefix (repro.lists.wyllie)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.prefix import ADD, MAX
from repro.lists.sequential import prefix_sequential
from repro.lists.wyllie import rank_wyllie, wyllie_exclusive, wyllie_prefix


class TestWyllieExclusive:
    def test_exclusive_offsets_match_sequential(self, rng):
        nxt = random_list(257, rng)
        values = rng.integers(-10, 10, 257)
        off, _ = wyllie_exclusive(nxt, values, ADD)
        inclusive = prefix_sequential(nxt, values, ADD)
        assert np.array_equal(off + values, inclusive)

    def test_head_gets_identity(self, rng):
        nxt = random_list(64, rng)
        off, _ = wyllie_exclusive(nxt, np.ones(64, dtype=np.int64), ADD)
        ranks = true_ranks(nxt)
        head = int(np.flatnonzero(ranks == 0)[0])
        assert off[head] == 0

    def test_rounds_are_logarithmic(self):
        for n in (1, 2, 3, 64, 1000):
            nxt = ordered_list(n)
            _, rounds = wyllie_exclusive(nxt, np.ones(n, dtype=np.int64), ADD)
            assert rounds <= math.ceil(math.log2(max(n, 2))) + 1

    def test_non_commutative_safety_via_max(self, rng):
        # MAX is commutative, but the operand ordering path is exercised by
        # comparing against the sequential reference on random values
        nxt = random_list(100, rng)
        values = rng.integers(0, 1000, 100)
        off, _ = wyllie_exclusive(nxt, values, MAX)
        incl = prefix_sequential(nxt, values, MAX)
        assert np.array_equal(np.maximum(off, values), incl)


class TestWyllieRanking:
    @pytest.mark.parametrize("n", [1, 2, 5, 33, 1024])
    def test_ranks_match_truth(self, n):
        nxt = random_list(n, 3)
        run = rank_wyllie(nxt, p=2)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_work_is_n_log_n(self):
        n = 4096
        run = wyllie_prefix(random_list(n, 1), p=1)
        t = run.triplet
        rounds = run.stats["rounds"]
        assert rounds == math.ceil(math.log2(n))
        assert t.t_m == pytest.approx(5 * n * rounds)

    def test_barriers_per_round(self):
        n = 256
        run = wyllie_prefix(random_list(n, 1), p=1)
        assert run.triplet.b == run.stats["rounds"]

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            wyllie_prefix(np.empty(0, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            wyllie_prefix(ordered_list(4), p=0)
        with pytest.raises(ConfigurationError):
            wyllie_prefix(ordered_list(4), values=np.ones(2))
