"""Tests for related-work CC algorithms (repro.graphs.variants)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs.generate import (
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
    star_graph,
)
from repro.graphs.variants import awerbuch_shiloach, hybrid_cc, random_mating

from .conftest import nx_cc_labels

FAMILIES = {
    "random": random_graph(250, 700, rng=0),
    "mesh": mesh2d(9, 10),
    "chain": chain_graph(200),
    "star": star_graph(120),
    "cliques": cliques_graph(4, 7),
    "forest": forest_of_chains(5, 30, rng=1),
}


class TestAwerbuchShiloach:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_matches_networkx(self, name):
        g = FAMILIES[name]
        assert np.array_equal(awerbuch_shiloach(g).labels, nx_cc_labels(g))

    def test_iterations_bounded(self):
        run = awerbuch_shiloach(chain_graph(512))
        assert run.iterations <= 2 * 9 + 4  # ~2 log n

    def test_graft_history(self):
        run = awerbuch_shiloach(random_graph(100, 300, rng=2))
        assert len(run.stats["graft_history"]) == run.iterations


class TestRandomMating:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_matches_networkx(self, name):
        g = FAMILIES[name]
        assert np.array_equal(random_mating(g, rng=7).labels, nx_cc_labels(g))

    @pytest.mark.parametrize("seed", range(5))
    def test_correct_for_any_coin_sequence(self, seed):
        g = random_graph(150, 400, rng=1)
        assert np.array_equal(random_mating(g, rng=seed).labels, nx_cc_labels(g))

    def test_edges_contract_monotonically(self):
        run = random_mating(random_graph(200, 800, rng=0), rng=3)
        hist = run.stats["m_history"]
        assert all(a >= b for a, b in zip(hist, hist[1:], strict=False))
        assert hist[-1] == 0

    def test_rounds_are_logarithmic_in_expectation(self):
        run = random_mating(cliques_graph(8, 16), rng=11)
        assert run.iterations <= 40  # very generous vs E[O(log n)]


class TestHybrid:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_matches_networkx(self, name):
        g = FAMILIES[name]
        assert np.array_equal(hybrid_cc(g, rng=5).labels, nx_cc_labels(g))

    def test_phases_recorded(self):
        run = hybrid_cc(random_graph(300, 1500, rng=2), rng=4)
        assert run.stats["mating_rounds"] >= 1
        assert run.iterations == (
            run.stats["mating_rounds"] + run.stats["deterministic_iterations"]
        )

    def test_switch_ratio_zero_means_pure_mating(self):
        run = hybrid_cc(random_graph(100, 300, rng=1), rng=2, switch_ratio=0.0)
        assert run.stats["deterministic_iterations"] == 0

    def test_switch_ratio_one_means_pure_deterministic(self):
        run = hybrid_cc(random_graph(100, 300, rng=1), rng=2, switch_ratio=1.0)
        assert run.stats["mating_rounds"] == 0

    def test_bad_switch_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            hybrid_cc(random_graph(10, 20, rng=0), switch_ratio=1.5)


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("seed", range(3))
    def test_cross_algorithm_agreement(self, seed):
        g = random_graph(180, 450, rng=seed)
        ref = nx_cc_labels(g)
        for fn in (
            awerbuch_shiloach,
            lambda g: random_mating(g, rng=seed),
            lambda g: hybrid_cc(g, rng=seed),
        ):
            assert np.array_equal(fn(g).labels, ref)
