"""Seeded violation for the hot-loop-import rule.

Parsed by the static-lint tests under the module name
``repro.sim.kernel`` (never imported)."""

from repro.obs import Tracer  # -> hot-loop-import


def run(tracer=Tracer):
    return tracer
