"""Seeded violation proving the linter covers :mod:`repro.xval`.

Parsed by the static-lint tests under the module name
``repro.xval.lint_seeded`` (never imported).  Divergence reports must
be byte-identical run to run — golden JSONL comparison depends on it —
so the determinism family applies to the whole package; the wall-clock
read below is the one intentional violation.
"""

import time


def stamped_report(pairs):
    stamp = time.time()  # -> nondet-call (reports must not carry wall time)
    return {"pairs": list(pairs), "generated_at": stamp}
