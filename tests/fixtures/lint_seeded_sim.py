"""Seeded violations for the determinism / state / hook rule families.

Parsed by the static-lint tests under the module name
``repro.sim.lint_seeded`` (this file is never imported); every
construct below exists to make exactly one rule fire at a known line.
"""

import os
import time


def unseeded_now():
    t = time.time()  # -> nondet-call
    cfg = os.environ.get("REPRO_SEEDED")  # -> nondet-env
    seen = {1, 2, 3}
    order = list(seen)  # -> nondet-set-iter
    key = id(order)  # -> nondet-id-order
    return t, cfg, order, key


class Snapshotted:
    """to_state with no from_state -> state-missing-pair (exactly one
    finding: the pairing symptom outranks the uncovered ``counter``)."""

    STATE_VERSION = 1

    def __init__(self):
        self.counter = 0

    def tick(self):
        self.counter += 1

    def to_state(self):
        return {"version": self.STATE_VERSION, "counter": self.counter}


class SeededHook:
    """Public method outside HOOK_EVENTS -> hook-event-unknown."""

    def on_op(self, tid, op):
        pass

    def on_warp(self, tid):  # -> hook-event-unknown (typo'd event)
        pass
