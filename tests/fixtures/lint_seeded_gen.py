"""Seeded violations for the program-generator shape rules.

Parsed by the static-lint tests under the module name
``repro.graphs.lint_seeded`` (never imported)."""

from repro.sim import isa


def walker(a_x, n):
    for i in range(n):
        if i % 2:
            yield ("B", "sweep")  # -> gen-barrier-balance (true branch only)
        yield ("FA", a_x.addr(i))  # -> gen-op-arity (FA takes 3 elements)
        yield isa.load(a_x.addr(i))


def blocked(a_x):
    yield isa.run_block(
        [isa.load(a_x.addr(0)), isa.barrier("end")]  # -> gen-runblock-shape
    )
