"""Seeded violation for the engine-discipline rule.

Parsed by the static-lint tests under the module name
``benchmarks.lint_seeded`` (never imported); the direct engine
construction below is the regression case for the rule that replaced
the PR 2 runtime source grep."""

from repro.sim import MTAEngine


def test_direct():
    eng = MTAEngine(p=2)  # -> engine-direct-construct
    return eng
