"""Tests for the MTA cycle engine (repro.sim.mta_engine)."""

import pytest

from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.sim import MTAEngine, isa


def run_one(gen, **kw):
    eng = MTAEngine(p=1, **kw)
    eng.spawn(gen)
    return eng.run()


class TestBasicTiming:
    def test_compute_burst_cycles(self):
        def prog():
            yield isa.compute(10)

        r = run_one(prog())
        assert r.cycles == 10
        assert r.total_issued == 10
        assert r.utilization == 1.0

    def test_dependent_load_blocks_full_latency(self):
        def prog():
            yield isa.load_dep(0)
            yield isa.compute(1)

        r = run_one(prog(), mem_latency=100)
        # LD at cycle 0, wakes at 100, C at 100 → 101 cycles
        assert r.cycles == 101

    def test_independent_loads_overlap_with_lookahead(self):
        def prog():
            yield isa.load(0)
            yield isa.load(64)
            yield isa.compute(1)

        r = run_one(prog(), mem_latency=100, lookahead=2)
        # all three issue back-to-back; run ends when the thread's
        # generator finishes (completion of outstanding loads happens
        # after its last issue)
        assert r.cycles <= 10

    def test_lookahead_exhaustion_blocks(self):
        def prog():
            for i in range(4):
                yield isa.load(i * 8)

        r = run_one(prog(), mem_latency=100, lookahead=1)
        # load0 issues, credit lets load1 issue, then the thread must
        # wait for load0 before load2
        assert r.cycles > 100

    def test_max_outstanding_enforced(self):
        def prog():
            for i in range(10):
                yield isa.load(i * 8)

        r = run_one(prog(), mem_latency=50, lookahead=100, max_outstanding=2)
        assert r.cycles > 50


class TestFetchAdd:
    def test_returns_old_values_atomically(self):
        got = []

        def prog(k):
            v = yield isa.fetch_add(7, 1)
            got.append(v)

        eng = MTAEngine(p=1)
        eng.set_counter(7, 0)
        for k in range(20):
            eng.spawn(prog(k))
        eng.run()
        assert sorted(got) == list(range(20))
        assert eng.fa_values[7] == 20

    def test_hotspot_serializes_one_per_cycle(self):
        """With several processors aiming atomics at one word, the owning
        bank's 1-per-cycle service rate backs requests up."""

        def prog():
            yield isa.fetch_add(3, 1)

        eng = MTAEngine(p=8, streams_per_proc=16, mem_latency=10)
        eng.set_counter(3, 0)
        for _ in range(96):
            eng.spawn(prog())
        eng.run()
        assert eng.fa_serialization_stalls > 0

    def test_custom_increment(self):
        def prog():
            yield isa.fetch_add(1, 5)

        eng = MTAEngine(p=1)
        eng.spawn(prog())
        eng.run()
        assert eng.fa_values[1] == 5


class TestFullEmptyBits:
    def test_producer_consumer(self):
        log = []

        def consumer():
            v = yield isa.sync_load_consume(9)
            log.append(("got", v))

        def producer():
            yield isa.compute(5)
            yield isa.sync_store(9, 42)

        eng = MTAEngine(p=1)
        eng.spawn(consumer())
        eng.spawn(producer())
        eng.run()
        assert ("got", 42) in log

    def test_peek_leaves_full(self):
        vals = []

        def peeker():
            v = yield isa.sync_load_peek(4)
            vals.append(v)

        eng = MTAEngine(p=1)
        eng.set_full(4, 17)
        eng.spawn(peeker())
        eng.spawn(peeker())
        eng.run()
        assert vals == [17, 17]

    def test_consume_empties_word(self):
        order = []

        def consumer(tag):
            v = yield isa.sync_load_consume(4)
            order.append((tag, v))

        def producer():
            yield isa.sync_store(4, 1)
            yield isa.sync_store(4, 2)

        eng = MTAEngine(p=1)
        eng.spawn(consumer("a"))
        eng.spawn(consumer("b"))
        eng.spawn(producer())
        eng.run()
        assert sorted(v for _, v in order) == [1, 2]

    def test_sync_store_waits_for_empty(self):
        def producer():
            yield isa.sync_store(5, 1)
            yield isa.sync_store(5, 2)  # blocks until consumed

        def consumer():
            yield isa.compute(50)
            yield isa.sync_load_consume(5)

        eng = MTAEngine(p=1)
        eng.spawn(producer())
        eng.spawn(consumer())
        r = eng.run()
        assert r.cycles >= 50


class TestBarriers:
    def test_barrier_synchronizes(self):
        times = {}

        def prog(tag, work):
            yield isa.compute(work)
            yield isa.barrier("b")
            yield isa.compute(1)
            times[tag] = True

        eng = MTAEngine(p=1, barrier_latency=10)
        eng.register_barrier("b", 2)
        eng.spawn(prog("fast", 1))
        eng.spawn(prog("slow", 200))
        r = eng.run()
        assert r.cycles >= 210
        assert times == {"fast": True, "slow": True}

    def test_unregistered_barrier_raises(self):
        def prog():
            yield isa.barrier("nope")

        with pytest.raises(SimulationError):
            run_one(prog())


class TestDeadlockAndErrors:
    def test_deadlock_detected(self):
        def starving():
            yield isa.sync_load_consume(99)  # never filled

        eng = MTAEngine(p=1)
        eng.spawn(starving())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_unknown_opcode(self):
        def prog():
            yield ("XX", 1)

        with pytest.raises(SimulationError):
            run_one(prog())

    def test_stream_limit_enforced(self):
        eng = MTAEngine(p=1, streams_per_proc=2)

        def prog():
            yield isa.compute(1)

        eng.spawn(prog())
        eng.spawn(prog())
        with pytest.raises(ConfigurationError):
            eng.spawn(prog())

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MTAEngine(p=0)
        with pytest.raises(ConfigurationError):
            MTAEngine(p=1, mem_latency=0)


class TestUtilizationSaturation:
    """The paper's claim: ~latency/lookahead streams saturate a processor."""

    def chasers(self, k, steps=40):
        def chaser():
            for i in range(steps):
                yield isa.compute(1)
                yield isa.load_dep(i)
                yield isa.load_dep(1000 + i)

        return [chaser() for _ in range(k)]

    def test_few_streams_starve(self):
        eng = MTAEngine(p=1, streams_per_proc=128, mem_latency=100)
        for g in self.chasers(8):
            eng.spawn(g)
        assert eng.run().utilization < 0.25

    def test_many_streams_saturate(self):
        eng = MTAEngine(p=1, streams_per_proc=128, mem_latency=100)
        for g in self.chasers(100):
            eng.spawn(g)
        assert eng.run().utilization > 0.9

    def test_multi_processor_issue_independent(self):
        def burst():
            yield isa.compute(100)

        eng = MTAEngine(p=4)
        for proc in range(4):
            eng.spawn(burst(), proc=proc)
        r = eng.run()
        assert r.cycles == 100
        assert r.total_issued == 400
        assert r.utilization == 1.0


class TestBankContention:
    """Opt-in hashed-bank modeling: hotspot words queue at their bank."""

    def _hammer(self, addr_fn, steps=20):
        def prog():
            for i in range(steps):
                yield isa.load_dep(addr_fn(i))

        return prog()

    def test_disabled_by_default(self):
        eng = MTAEngine(p=2, streams_per_proc=32)
        for _ in range(32):
            eng.spawn(self._hammer(lambda i: 7))
        eng.run()
        assert eng.bank_contention_stalls == 0

    def test_same_word_hotspot_queues(self):
        eng = MTAEngine(p=4, streams_per_proc=64, n_banks=512)
        for _ in range(128):
            eng.spawn(self._hammer(lambda i: 42))
        r_hot = eng.run()
        assert eng.bank_contention_stalls > 0

        eng2 = MTAEngine(p=4, streams_per_proc=64, n_banks=512)
        for t in range(128):
            eng2.spawn(self._hammer(lambda i, t=t: t * 1000 + i))
        r_spread = eng2.run()
        assert eng2.bank_contention_stalls == 0
        assert r_spread.cycles < r_hot.cycles

    def test_bad_bank_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MTAEngine(p=1, n_banks=12)


class TestRunawayGuard:
    def test_mta_max_cycles_guard(self):
        def forever():
            while True:
                yield isa.compute(1)

        eng = MTAEngine(p=1)
        eng.spawn(forever())
        with pytest.raises(SimulationError):
            eng.run(max_cycles=500)
