"""Tests for sequential ranking and prefix operators."""

import numpy as np
import pytest

from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.prefix import ADD, MAX, MIN, MUL
from repro.lists.sequential import prefix_sequential, rank_sequential


class TestSequentialRanking:
    def test_correct_on_both_classes(self, rng):
        for nxt in (ordered_list(500), random_list(500, rng)):
            run = rank_sequential(nxt)
            assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_single_processor_single_step(self):
        run = rank_sequential(ordered_list(100))
        assert len(run.steps) == 1
        assert run.steps[0].p == 1
        assert run.steps[0].barriers == 0

    def test_ordered_measured_contiguous(self):
        run = rank_sequential(ordered_list(1000))
        s = run.steps[0]
        assert float(s.contig.sum()) == pytest.approx(999.0)
        assert float(s.noncontig.sum()) == pytest.approx(1.0)

    def test_random_measured_noncontiguous(self, rng):
        run = rank_sequential(random_list(1000, rng))
        s = run.steps[0]
        assert float(s.noncontig.sum()) > 950

    def test_no_parallelism_offered(self):
        run = rank_sequential(ordered_list(10))
        assert run.steps[0].effective_parallelism == 1.0


class TestPrefixSequential:
    def test_add_prefix(self):
        nxt = ordered_list(5)
        values = np.array([1, 2, 3, 4, 5])
        out = prefix_sequential(nxt, values, ADD)
        assert out.tolist() == [1, 3, 6, 10, 15]

    def test_follows_list_order_not_array_order(self, rng):
        nxt = random_list(50, rng)
        values = np.arange(50)
        out = prefix_sequential(nxt, values, ADD)
        ranks = true_ranks(nxt)
        order = np.argsort(ranks)
        assert np.array_equal(out[order], np.cumsum(values[order]))


class TestPrefixOps:
    def test_identities(self):
        x = np.array([7, -3, 10])
        assert np.array_equal(ADD(ADD.identity, x), x)
        assert np.array_equal(MAX(MAX.identity, x), x)
        assert np.array_equal(MIN(MIN.identity, x), x)
        assert np.array_equal(MUL(MUL.identity, x), x)

    def test_associativity_samples(self, rng):
        a, b, c = rng.integers(-100, 100, (3, 20))
        for op in (ADD, MAX, MIN):
            assert np.array_equal(op(op(a, b), c), op(a, op(b, c)))

    def test_callable(self):
        assert ADD(2, 3) == 5
        assert MAX(2, 3) == 3
