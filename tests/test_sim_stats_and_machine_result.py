"""Tests for result containers: SimReport combination and MachineResult."""

import numpy as np
import pytest

from repro.core import MTAMachine, StepCost
from repro.core.machine import MachineResult, StepTime
from repro.errors import ConfigurationError
from repro.sim.stats import SimReport, combine_reports


def report(name="r", p=2, cycles=100, issued=(50, 30), clock=220e6, ops=None):
    return SimReport(
        name=name,
        p=p,
        cycles=cycles,
        issued=np.array(issued, dtype=np.int64),
        clock_hz=clock,
        op_counts=ops or {},
    )


class TestSimReport:
    def test_utilization(self):
        r = report(cycles=100, issued=(50, 30))
        assert r.utilization == pytest.approx(80 / 200)

    def test_zero_cycles_full_utilization(self):
        r = report(cycles=0, issued=(0, 0))
        assert r.utilization == 1.0

    def test_seconds(self):
        r = report(cycles=220, clock=220e6)
        assert r.seconds == pytest.approx(1e-6)

    def test_total_issued(self):
        assert report(issued=(7, 9)).total_issued == 16


class TestCombineReports:
    def test_cycles_and_issued_add(self):
        a = report("a", cycles=100, issued=(10, 20), ops={"C": 30})
        b = report("b", cycles=50, issued=(5, 5), ops={"C": 5, "LD": 5})
        c = combine_reports("ab", [a, b])
        assert c.cycles == 150
        assert c.total_issued == 40
        assert c.op_counts == {"C": 35, "LD": 5}
        assert c.detail["phases"] == ["a", "b"]

    def test_utilization_is_cycle_weighted(self):
        # phase a: 100% busy for 100 cycles; phase b: idle 100 cycles
        a = report("a", cycles=100, issued=(100, 100))
        b = report("b", cycles=100, issued=(0, 0))
        c = combine_reports("ab", [a, b])
        assert c.utilization == pytest.approx(0.5)

    def test_mixed_machines_rejected(self):
        a = report("a", p=2)
        b = report("b", p=4, issued=(1, 1, 1, 1))
        with pytest.raises(ValueError):
            combine_reports("ab", [a, b])
        with pytest.raises(ValueError):
            combine_reports("ab", [a, report("c", clock=1e6)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_reports("x", [])


class TestMachineResult:
    def make(self):
        steps = [
            StepTime(name="a", cycles=100.0, busy_cycles=150.0),
            StepTime(name="b", cycles=50.0, busy_cycles=20.0, detail={"k": 1}),
        ]
        return MachineResult(machine="m", p=2, clock_hz=1e6, steps=steps)

    def test_aggregates(self):
        r = self.make()
        assert r.cycles == 150.0
        assert r.seconds == pytest.approx(150e-6)
        assert r.utilization == pytest.approx(170 / 300)

    def test_step_lookup(self):
        r = self.make()
        assert r.step("b").detail["k"] == 1
        with pytest.raises(KeyError):
            r.step("missing")

    def test_utilization_capped_at_one(self):
        r = MachineResult(
            machine="m", p=1, clock_hz=1e6,
            steps=[StepTime(name="a", cycles=10.0, busy_cycles=100.0)],
        )
        assert r.utilization == 1.0

    def test_empty_run(self):
        r = MachineResult(machine="m", p=1, clock_hz=1e6, steps=[])
        assert r.cycles == 0
        assert r.utilization == 1.0


class TestMachineSecondsShortcut:
    def test_seconds_matches_run(self):
        m = MTAMachine(p=2)
        steps = [StepCost(name="s", p=2, noncontig=1000.0, parallelism=10_000)]
        assert m.seconds(steps) == pytest.approx(m.run(steps).seconds)


class TestBreakdown:
    def test_breakdown_renders_sorted(self):
        steps = [
            StepTime(name="cheap", cycles=10.0, busy_cycles=10.0, detail={"x": 1.0}),
            StepTime(name="hot", cycles=90.0, busy_cycles=80.0, detail={"mem": 70.0}),
        ]
        r = MachineResult(machine="m", p=1, clock_hz=1e6, steps=steps)
        text = r.breakdown()
        lines = text.splitlines()
        assert "hot" in lines[2]  # most expensive row first
        assert "90.0%" in lines[2]
        assert "mem=70" in lines[2]

    def test_breakdown_top_limits_rows(self):
        steps = [
            StepTime(name=f"s{i}", cycles=float(i + 1), busy_cycles=1.0)
            for i in range(10)
        ]
        r = MachineResult(machine="m", p=1, clock_hz=1e6, steps=steps)
        assert len(r.breakdown(top=3).splitlines()) == 2 + 3

    def test_breakdown_on_real_run(self):
        from repro.core import SMPMachine
        from repro.lists import random_list, rank_helman_jaja

        run = rank_helman_jaja(random_list(2000, 1), p=2, rng=0)
        text = SMPMachine(p=2).run(run.steps).breakdown()
        assert "hj.3.traverse-sublists" in text
        assert "utilization" in text


class TestStepNameAmbiguity:
    def test_duplicate_step_names_raise_on_lookup(self):
        r = MachineResult(
            machine="m", p=1, clock_hz=1e6,
            steps=[
                StepTime(name="scan", cycles=10.0, busy_cycles=5.0),
                StepTime(name="scan", cycles=20.0, busy_cycles=5.0),
            ],
        )
        with pytest.raises(ConfigurationError) as exc:
            r.step("scan")
        assert "ambiguous" in str(exc.value)
        assert "2 steps" in str(exc.value)

    def test_unique_names_still_resolve(self):
        r = MachineResult(
            machine="m", p=1, clock_hz=1e6,
            steps=[
                StepTime(name="scan", cycles=10.0, busy_cycles=5.0),
                StepTime(name="rank", cycles=20.0, busy_cycles=5.0),
            ],
        )
        assert r.step("rank").cycles == 20.0
