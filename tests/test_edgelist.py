"""Tests for the edge-list container (repro.graphs.edgelist)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs.edgelist import EdgeList


def el(n, pairs):
    u = np.array([a for a, _ in pairs], dtype=np.int64)
    v = np.array([b for _, b in pairs], dtype=np.int64)
    return EdgeList(n, u, v)


class TestConstruction:
    def test_basic(self):
        g = el(4, [(0, 1), (2, 3)])
        assert g.m == 2
        assert len(g) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            el(2, [(0, 2)])
        with pytest.raises(WorkloadError):
            el(2, [(-1, 0)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(WorkloadError):
            EdgeList(3, np.array([0, 1]), np.array([1]))

    def test_negative_n_rejected(self):
        with pytest.raises(WorkloadError):
            EdgeList(-1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_empty_graph_ok(self):
        g = EdgeList(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert g.m == 0


class TestCanonical:
    def test_removes_self_loops(self):
        g = el(3, [(0, 0), (0, 1)]).canonical()
        assert g.m == 1

    def test_removes_duplicates_both_orientations(self):
        g = el(3, [(0, 1), (1, 0), (0, 1)]).canonical()
        assert g.m == 1

    def test_orders_endpoints(self):
        g = el(3, [(2, 1)]).canonical()
        assert (g.u <= g.v).all()


class TestTransforms:
    def test_symmetrized_doubles(self):
        g = el(3, [(0, 1), (1, 2)]).symmetrized()
        assert g.m == 4
        pairs = set(zip(g.u.tolist(), g.v.tolist(), strict=False))
        assert (1, 0) in pairs and (2, 1) in pairs

    def test_relabeled(self):
        g = el(3, [(0, 1)])
        perm = np.array([2, 0, 1])
        h = g.relabeled(perm)
        assert (h.u[0], h.v[0]) == (2, 0)

    def test_relabeled_requires_permutation(self):
        g = el(3, [(0, 1)])
        with pytest.raises(WorkloadError):
            g.relabeled(np.array([0, 0, 1]))
        with pytest.raises(WorkloadError):
            g.relabeled(np.array([0, 1]))

    def test_shuffled_preserves_edge_set(self):
        g = el(5, [(0, 1), (1, 2), (3, 4)])
        h = g.shuffled(rng=0)
        assert set(map(tuple, np.sort(np.stack([h.u, h.v], 1), axis=1).tolist())) == set(
            map(tuple, np.sort(np.stack([g.u, g.v], 1), axis=1).tolist())
        )


class TestDerived:
    def test_degrees(self):
        g = el(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees().tolist() == [3, 1, 1, 1]

    def test_adjacency_csr_roundtrip(self):
        g = el(4, [(0, 1), (1, 2), (0, 3)])
        indptr, indices = g.adjacency_csr()
        assert indptr[-1] == 2 * g.m
        neigh0 = sorted(indices[indptr[0] : indptr[1]].tolist())
        assert neigh0 == [1, 3]

    def test_component_count_reference(self):
        g = el(6, [(0, 1), (1, 2), (3, 4)])
        assert g.component_count_reference() == 3  # {0,1,2}, {3,4}, {5}
