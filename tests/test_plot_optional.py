"""matplotlib is optional: importing repro must never require it.

These tests run a subprocess with matplotlib imports blocked (an
installed copy would mask the bug) and assert that the package, the
CLI, and the ASCII plotter all work — and that only ``save_figure``
complains, with an actionable message.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

# A meta-path hook is the reliable way to simulate an absent package:
# it blocks `import matplotlib` and every submodule.
BLOCK_MATPLOTLIB = """
import sys

class _Block:
    def find_spec(self, name, path=None, target=None):
        if name.split(".")[0] == "matplotlib":
            raise ImportError(f"{name} is blocked for this test")
        return None

sys.meta_path.insert(0, _Block())
sys.modules.pop("matplotlib", None)
"""


def _run(snippet: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", BLOCK_MATPLOTLIB + snippet],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def test_import_repro_without_matplotlib():
    proc = _run(
        """
import repro
import repro.core.plot
from repro.core import ResultTable, run_jobs
print("ok")
"""
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_ascii_plot_works_without_matplotlib():
    proc = _run(
        """
from repro.core.plot import ascii_plot
out = ascii_plot({"s": ([1, 2, 3], [1, 4, 9])}, logx=True, logy=True)
assert "o" in out
print("ok")
"""
    )
    assert proc.returncode == 0, proc.stderr


def test_cli_works_without_matplotlib():
    proc = _run(
        """
from repro.cli import main
assert main(["backends"]) == 0
"""
    )
    assert proc.returncode == 0, proc.stderr


def test_save_figure_raises_actionable_error():
    proc = _run(
        """
from repro.core.plot import save_figure
from repro.errors import ConfigurationError
try:
    save_figure({"s": ([1], [1])}, "/tmp/never-written.png")
except ConfigurationError as exc:
    assert "matplotlib" in str(exc)
    assert "ascii_plot" in str(exc)
    print("raised")
else:
    print("no error")
"""
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "raised"
