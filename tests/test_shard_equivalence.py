"""The sharded runtime's equivalence contract (docs/SHARDING.md).

1. ``shards=1`` is byte-identical to the plain unsharded kernel.
2. For a fixed partition count ``k``, results are independent of the
   worker count and of the executor (``inline`` vs ``mp``), including
   optional hook-event streams.
3. With ``remote_latency == mem_latency`` and partition-local stateful
   references, any ``k`` is byte-identical to the unsharded kernel.
"""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.sim import MTAEngine, SMPEngine
from repro.sim.mta_next import MTANextEngine
from repro.sim.shard import PartitionPlan, ShardEventLog, run_sharded

from .shard_helpers import (
    N_WORDS,
    P,
    EngCtx,
    build_cross,
    build_deadlock,
    build_local,
    build_values,
    canon,
    run_unsharded,
)


def shard(builder, k, W, R, **kw):
    plan = PartitionPlan(N_WORDS, P, k)
    return run_sharded(plan, workers=W, builder=builder,
                       params={"streams_per_proc": 16},
                       remote_latency=R, name="smoke",
                       budget=10_000_000, **kw)


class TestEquivalenceContract:
    def test_shards_1_matches_unsharded(self):
        ref = run_unsharded(build_cross)
        res = shard(build_cross, 1, 1, 100)
        assert canon(res.report) == canon(ref)

    @pytest.mark.parametrize("k", [2, 4])
    def test_worker_count_invariance(self, k):
        base = shard(build_cross, k, 1, 100)
        for W in sorted({2, k}):
            res = shard(build_cross, k, W, 100)
            # W=1 traffic is worker-local loopback; W>=2 routes through
            # the coordinator — the reports must not see the difference
            assert res.detail["msgs_routed"] > 0
            assert canon(res.report) == canon(base.report), (k, W)

    def test_value_words_are_worker_invariant(self):
        base = shard(build_values, 4, 1, 100)
        assert base.values[201] == base.values[1200] + 1
        for W in (2, 4):
            res = shard(build_values, 4, W, 100)
            assert canon(res.report) == canon(base.report), W
            assert res.values == base.values

    @pytest.mark.parametrize("k,W", [(1, 1), (2, 2), (4, 4)])
    def test_mp_executor_matches_inline(self, k, W):
        a = shard(build_cross, k, W, 100, collect_events=True)
        b = shard(build_cross, k, W, 100, executor="mp",
                  collect_events=True)
        assert canon(a.report) == canon(b.report)
        assert a.events == b.events and a.events

    def test_event_streams_are_worker_invariant(self):
        e1 = shard(build_cross, 4, 1, 100, collect_events=True)
        e4 = shard(build_cross, 4, 4, 100, collect_events=True)
        assert e1.events == e4.events

    @pytest.mark.parametrize("k,W", [(1, 1), (2, 1), (2, 2), (4, 4)])
    def test_local_refs_match_unsharded_at_any_k(self, k, W):
        log = ShardEventLog()
        ref = run_unsharded(build_local, hooks=(log,))
        res = shard(build_local, k, W, None, collect_events=True)
        assert canon(res.report) == canon(ref)
        assert res.events == log.canonical()

    def test_remote_latency_changes_timing_but_not_values(self):
        fast = shard(build_cross, 2, 1, 100)
        slow = shard(build_cross, 2, 1, 400)
        assert slow.report.cycles > fast.report.cycles
        assert fast.values == slow.values

    def test_deadlock_is_detected_not_hung(self):
        with pytest.raises(DeadlockError):
            shard(build_deadlock, 2, 2, 100)


class TestEngineFacade:
    def facade_run(self, builder, k, W, R, executor="inline"):
        plan = PartitionPlan(N_WORDS, P, k)
        eng = MTAEngine(P, streams_per_proc=16, shards=plan,
                        shard_workers=W, shard_executor=executor,
                        remote_latency=R)
        builder(EngCtx(eng))
        return eng, eng.run("smoke", 10_000_000)

    @pytest.mark.parametrize("k,W", [(1, 1), (2, 2), (4, 2)])
    def test_facade_local_matches_unsharded(self, k, W):
        ref = run_unsharded(build_local)
        eng, rep = self.facade_run(build_local, k, W, None)
        assert canon(rep) == canon(ref)
        assert eng.shards == k
        assert eng.shard_detail["rounds"] >= 0

    def test_facade_cross_worker_invariance_and_mp(self):
        base = self.facade_run(build_cross, 4, 1, 100)[1]
        for W, ex in ((4, "inline"), (4, "mp")):
            rep = self.facade_run(build_cross, 4, W, 100, ex)[1]
            assert canon(rep) == canon(base), (W, ex)

    def test_shards_accepts_plain_int(self):
        eng = MTAEngine(P, streams_per_proc=16, shards=2,
                        shard_words=N_WORDS)
        build_local(EngCtx(eng))
        assert eng.run("smoke", 10_000_000).cycles > 0

    def test_mta_next_sharded_drops_bank_queueing(self):
        eng = MTANextEngine(P, shards=2, shard_words=N_WORDS)
        assert eng.n_banks == 0

    def test_guards(self):
        with pytest.raises(ConfigurationError):
            MTAEngine(P, shards=2, record=True)
        with pytest.raises(ConfigurationError):
            MTAEngine(P, remote_latency=50)  # needs shards
        with pytest.raises(ConfigurationError):
            SMPEngine(P, shards=2)  # SMP timing is globally coupled
        with pytest.raises(ConfigurationError):
            MTANextEngine(P, shards=2, n_banks=64)
