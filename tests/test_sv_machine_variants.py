"""Tests for the MTA (Alg. 3) and SMP-optimized SV variants."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graphs.generate import (
    best_case_labeling,
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
    star_graph,
    worst_case_labeling,
)
from repro.graphs.sv_mta import sv_mta
from repro.graphs.sv_smp import sv_smp

from .conftest import nx_cc_labels

FAMILIES = {
    "random": random_graph(300, 900, rng=0),
    "mesh": mesh2d(11, 12),
    "chain": chain_graph(300),
    "star": star_graph(200),
    "cliques": cliques_graph(5, 8),
    "forest": forest_of_chains(4, 40, rng=1),
}


class TestSVMTA:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_matches_networkx(self, name):
        g = FAMILIES[name]
        run = sv_mta(g, max_iter=600)
        assert np.array_equal(run.labels, nx_cc_labels(g))

    def test_ends_with_rooted_stars(self):
        run = sv_mta(random_graph(200, 600, rng=2))
        d = run.parents
        assert np.array_equal(d[d], d)

    def test_one_barrier_per_phase(self):
        run = sv_mta(random_graph(100, 300, rng=1))
        # graft + shortcut steps, each one barrier
        assert run.triplet.b == len(run.steps)

    def test_shortcut_work_measured_not_bounded(self):
        run = sv_mta(chain_graph(256))
        # total pointer jumps recorded per iteration
        assert all(j >= 0 for j in run.stats["jump_work"])
        assert sum(run.stats["jump_work"]) > 0

    def test_graft_history_monotone_end(self):
        run = sv_mta(random_graph(150, 400, rng=3))
        assert run.stats["graft_history"][-1] == 0

    def test_max_iter_guard(self):
        with pytest.raises(SimulationError):
            sv_mta(chain_graph(300), max_iter=1)

    def test_labeling_sensitivity(self):
        """Iteration counts vary with vertex labels (paper Section 4)."""
        base = random_graph(256, 512, rng=5)
        runs = {
            "best": sv_mta(best_case_labeling(base), max_iter=600).iterations,
            "arbitrary": sv_mta(base, max_iter=600).iterations,
            "worst": sv_mta(worst_case_labeling(base), max_iter=600).iterations,
        }
        assert len(set(runs.values())) > 1 or runs["arbitrary"] > 1


class TestSVSMP:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_matches_networkx(self, name):
        g = FAMILIES[name]
        run = sv_smp(g)
        assert np.array_equal(run.labels, nx_cc_labels(g))

    def test_edge_filtering_shrinks_work(self):
        run = sv_smp(random_graph(300, 1200, rng=0))
        hist = run.stats["m_history"]
        assert hist[0] == 1200
        assert hist[-1] == 0
        assert all(a >= b for a, b in zip(hist, hist[1:], strict=False))

    def test_three_barriers_per_iteration(self):
        run = sv_smp(random_graph(100, 250, rng=1))
        assert run.triplet.b == 3 * run.iterations

    def test_min_hook_converges_on_adversarial_star(self):
        """The priority-CRCW hook avoids the one-merge-per-round funnel."""
        g = worst_case_labeling(star_graph(512))
        run = sv_smp(g)
        assert run.iterations <= 4

    def test_max_iter_guard(self):
        with pytest.raises(SimulationError):
            sv_smp(chain_graph(300), max_iter=0)


class TestVariantsAgree:
    @pytest.mark.parametrize("seed", range(4))
    def test_both_machine_variants_agree(self, seed):
        g = random_graph(200, 500, rng=seed)
        assert np.array_equal(sv_mta(g).labels, sv_smp(g).labels)
