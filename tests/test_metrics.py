"""Tests for derived metrics (repro.core.metrics)."""

import pytest

from repro.core.metrics import (
    crossover,
    geometric_mean,
    parallel_efficiency,
    ratio_series,
    scaling_exponent,
    speedup,
)
from repro.errors import ConfigurationError


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            speedup(0.0, 1.0)

    def test_rejects_negative_baseline(self):
        with pytest.raises(ConfigurationError):
            speedup(-3.0, 1.0)

    def test_rejects_negative_parallel(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, -2.0)

    def test_efficiency(self):
        assert parallel_efficiency(8.0, 1.0, p=8) == 1.0
        assert parallel_efficiency(8.0, 2.0, p=8) == 0.5

    def test_efficiency_bad_p(self):
        with pytest.raises(ConfigurationError):
            parallel_efficiency(1.0, 1.0, p=0)


class TestRatioSeries:
    def test_elementwise(self):
        assert ratio_series([4, 9], [2, 3]) == [2.0, 3.0]

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ratio_series([1], [1, 2])

    def test_rejects_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            ratio_series([1, 2], [1, 0])

    def test_rejects_negative_denominator(self):
        with pytest.raises(ConfigurationError):
            ratio_series([1, 2], [1, -3])


class TestCrossover:
    def test_exact_point(self):
        xs = [1, 2, 3, 4]
        a = [10, 8, 2, 1]  # a dips below b between x=2 and x=3
        b = [5, 5, 5, 5]
        x = crossover(xs, a, b)
        assert 2 < x <= 3

    def test_interpolation(self):
        xs = [0, 10]
        a = [2, -2]
        b = [0, 0]
        assert crossover(xs, a, b) == pytest.approx(5.0)

    def test_crossing_at_first_sample(self):
        assert crossover([1, 2], [0, 0], [1, 1]) == 1.0

    def test_never_crosses(self):
        assert crossover([1, 2], [5, 5], [1, 1]) is None

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            crossover([1], [1, 2], [1, 2])


class TestScalingExponent:
    def test_linear(self):
        xs = [1, 2, 4, 8]
        ys = [3, 6, 12, 24]
        assert scaling_exponent(xs, ys) == pytest.approx(1.0)

    def test_perfect_strong_scaling(self):
        ps = [1, 2, 4, 8]
        ts = [8, 4, 2, 1]
        assert scaling_exponent(ps, ts) == pytest.approx(-1.0)

    def test_quadratic(self):
        xs = [1, 2, 4]
        ys = [1, 4, 16]
        assert scaling_exponent(xs, ys) == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            scaling_exponent([1], [1])

    def test_equal_x_rejected(self):
        with pytest.raises(ConfigurationError):
            scaling_exponent([2, 2], [1, 3])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
