"""Unit tests for the owner-computes partition plan (repro.sim.shard)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.shard import PartitionPlan, assign_workers


class TestPartitionPlan:
    def test_even_split_owns_every_address(self):
        plan = PartitionPlan(100, 4, 4)
        assert plan.addr_bounds == (0, 25, 50, 75, 100)
        assert plan.proc_bounds == (0, 1, 2, 3, 4)
        for addr in range(100):
            j = plan.owner_of(addr)
            lo, hi = plan.addr_range(j)
            assert lo <= addr < hi

    def test_uneven_split_is_contiguous_and_total(self):
        plan = PartitionPlan(10, 5, 3)
        assert plan.addr_bounds[0] == 0
        assert plan.addr_bounds[-1] == 10
        owners = [plan.owner_of(a) for a in range(10)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2}

    def test_past_the_end_addresses_belong_to_last_partition(self):
        plan = PartitionPlan(100, 4, 4)
        assert plan.owner_of(100) == 3
        assert plan.owner_of(10_000) == 3

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionPlan(100, 4, 2).owner_of(-1)

    def test_partition_of_proc(self):
        plan = PartitionPlan(100, 8, 4)
        assert [plan.partition_of_proc(p) for p in range(8)] == [
            0, 0, 1, 1, 2, 2, 3, 3]
        with pytest.raises(ConfigurationError):
            plan.partition_of_proc(8)
        with pytest.raises(ConfigurationError):
            plan.partition_of_proc(-1)

    def test_explicit_bounds(self):
        plan = PartitionPlan(100, 4, 2, addr_bounds=[0, 10, 100],
                             proc_bounds=[0, 3, 4])
        assert plan.owner_of(9) == 0
        assert plan.owner_of(10) == 1
        assert plan.proc_range(0) == (0, 3)
        assert plan.addr_range(1) == (10, 100)

    def test_empty_address_range_is_allowed(self):
        # arenas may be empty; the partition still owns its processors
        plan = PartitionPlan(100, 4, 2, addr_bounds=[0, 0, 100])
        assert plan.owner_of(0) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_words=100, p=4, k=0),
            dict(n_words=100, p=2, k=3),  # k > p
            dict(n_words=2, p=4, k=3),  # n_words < k
            dict(n_words=100, p=4, k=2, addr_bounds=[0, 100]),  # wrong len
            dict(n_words=100, p=4, k=2, addr_bounds=[5, 50, 100]),  # not 0
            dict(n_words=100, p=4, k=2, addr_bounds=[0, 60, 50]),  # decreasing
            dict(n_words=100, p=4, k=2, proc_bounds=[0, 4]),  # wrong len
            dict(n_words=100, p=4, k=2, proc_bounds=[0, 2, 3]),  # not [0, p]
            dict(n_words=100, p=4, k=2, proc_bounds=[0, 0, 4]),  # empty part
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PartitionPlan(**kwargs)

    def test_signature_identity(self):
        a = PartitionPlan(100, 4, 2)
        b = PartitionPlan(100, 4, 2)
        c = PartitionPlan(100, 4, 2, addr_bounds=[0, 10, 100])
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()


class TestAssignWorkers:
    def test_one_worker_takes_all(self):
        assert assign_workers(4, 1) == [(0, 4)]

    def test_equal_split(self):
        assert assign_workers(4, 2) == [(0, 2), (2, 4)]
        assert assign_workers(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_uneven_split_covers_all_partitions(self):
        ranges = assign_workers(5, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 5
        assert all(lo < hi for lo, hi in ranges)
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:], strict=False))

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            assign_workers(4, 0)
        with pytest.raises(ConfigurationError):
            assign_workers(2, 3)
