"""Tests for graph workload generators (repro.graphs.generate)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs.generate import (
    best_case_labeling,
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    mesh3d,
    random_graph,
    star_graph,
    worst_case_labeling,
)


class TestRandomGraph:
    def test_exact_unique_edge_count(self):
        g = random_graph(100, 500, rng=0)
        assert g.m == 500
        assert g.canonical().m == 500  # already unique and loop-free

    def test_deterministic(self):
        a = random_graph(50, 100, rng=3)
        b = random_graph(50, 100, rng=3)
        assert np.array_equal(a.u, b.u) and np.array_equal(a.v, b.v)

    def test_dense_request(self):
        g = random_graph(10, 45, rng=0)  # complete graph
        assert g.m == 45

    def test_too_many_edges_rejected(self):
        with pytest.raises(WorkloadError):
            random_graph(10, 46)

    def test_zero_edges(self):
        assert random_graph(10, 0, rng=0).m == 0


class TestMeshes:
    def test_mesh2d_edge_count(self):
        g = mesh2d(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horiz + vert

    def test_mesh3d_edge_count(self):
        g = mesh3d(3, 3, 3)
        assert g.n == 27
        assert g.m == 3 * (2 * 3 * 3)

    def test_mesh_connected(self):
        assert mesh2d(6, 7).component_count_reference() == 1
        assert mesh3d(2, 3, 4).component_count_reference() == 1

    def test_degenerate_dimensions(self):
        assert mesh2d(1, 5).m == 4
        with pytest.raises(WorkloadError):
            mesh2d(0, 5)


class TestFamilies:
    def test_chain(self):
        g = chain_graph(10)
        assert g.m == 9
        assert g.component_count_reference() == 1

    def test_star(self):
        g = star_graph(10)
        assert g.m == 9
        assert g.degrees()[0] == 9

    def test_cliques(self):
        g = cliques_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 6
        assert g.component_count_reference() == 3

    def test_forest_of_chains(self):
        g = forest_of_chains(4, 25, rng=0)
        assert g.n == 100
        assert g.m == 4 * 24
        assert g.component_count_reference() == 4

    def test_single_vertex_families(self):
        assert chain_graph(1).m == 0
        assert star_graph(1).m == 0


class TestLabelings:
    def test_labelings_are_permutations_of_same_graph(self):
        g = random_graph(40, 80, rng=1)
        for relabel in (best_case_labeling, worst_case_labeling):
            h = relabel(g)
            assert h.n == g.n
            assert h.m == g.m
            assert h.component_count_reference() == g.component_count_reference()

    def test_best_case_star_center_gets_smallest_label(self):
        g = star_graph(20)
        h = best_case_labeling(g)
        # BFS starts at the center (vertex 0), so it keeps label 0,
        # and every edge touches it
        degs = h.degrees()
        assert degs[0] == 19

    def test_worst_case_reverses(self):
        g = chain_graph(10)
        h = worst_case_labeling(g)
        # endpoint that was 0 becomes n-1
        assert h.degrees().tolist() == g.degrees()[::1].tolist()
