"""Edge cases for the cycle-engine thread programs."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs.edgelist import EdgeList
from repro.graphs.programs import simulate_mta_cc, simulate_smp_cc
from repro.graphs.sequential_cc import cc_union_find
from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.programs import simulate_mta_list_ranking, simulate_smp_list_ranking


class TestListProgramEdges:
    def test_single_node(self):
        nxt = ordered_list(1)
        sim = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=4)
        assert sim.ranks.tolist() == [0]

    def test_two_nodes(self):
        nxt = ordered_list(2)
        sim = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=4)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_more_workers_than_walks(self):
        nxt = random_list(30, 1)  # 3 walks at nodes_per_walk=10
        sim = simulate_mta_list_ranking(nxt, p=2, streams_per_proc=100)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_one_node_per_walk(self):
        nxt = random_list(50, 2)
        sim = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=16, nodes_per_walk=1)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_smp_single_processor(self):
        nxt = random_list(200, 3)
        sim = simulate_smp_list_ranking(nxt, p=1, rng=0)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_smp_more_procs_than_sublists(self):
        nxt = random_list(40, 4)
        sim = simulate_smp_list_ranking(nxt, p=4, s=2, rng=0)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_empty_list_rejected(self):
        with pytest.raises(WorkloadError):
            simulate_mta_list_ranking(np.empty(0, dtype=np.int64))
        with pytest.raises(WorkloadError):
            simulate_smp_list_ranking(np.empty(0, dtype=np.int64))


class TestCCProgramEdges:
    def test_edgeless_graph(self):
        g = EdgeList(5, np.empty(0, np.int64), np.empty(0, np.int64))
        sim = simulate_mta_cc(g, p=1, streams_per_proc=4)
        assert sim.labels.tolist() == list(range(5))
        sim2 = simulate_smp_cc(g, p=2)
        assert sim2.labels.tolist() == list(range(5))

    def test_single_edge(self):
        g = EdgeList(3, np.array([0]), np.array([2]))
        sim = simulate_mta_cc(g, p=1, streams_per_proc=4)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    def test_chunk_size_one(self):
        from repro.graphs.generate import random_graph

        g = random_graph(60, 150, rng=1)
        sim = simulate_mta_cc(g, p=2, edges_per_chunk=1)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    def test_empty_graph_rejected(self):
        g = EdgeList(0, np.empty(0, np.int64), np.empty(0, np.int64))
        with pytest.raises(WorkloadError):
            simulate_mta_cc(g)
        with pytest.raises(WorkloadError):
            simulate_smp_cc(g)

    def test_race_resolution_still_correct_across_engines(self):
        """Engine-time write resolution differs from NumPy's array-order
        resolution, but the component labeling must not."""
        from repro.graphs.generate import random_graph
        from repro.graphs.sv_mta import sv_mta

        g = random_graph(150, 600, rng=9)
        a = simulate_mta_cc(g, p=3).labels
        b = sv_mta(g).labels
        assert np.array_equal(a, b)
