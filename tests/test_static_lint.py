"""The static linter (`repro lint`): rules, suppressions, CLI, goldens.

Three layers of coverage:

* seeded violations — every rule family fires on the fixture sources
  under ``tests/fixtures/`` with a stable rule id and witness location,
  and the full finding set round-trips byte-identically through the
  committed golden (``tests/golden/lint_seeded.jsonl``);
* state-contract mutations — deliberate edits to the real
  ``SimThread`` source (drop a ``to_state`` key, add a field without a
  state key, skip a version bump) each produce exactly one finding with
  the right rule id;
* the repo itself — ``lint_repo()`` runs clean, which is the same
  invariant the CI ``static-lint`` job gates on.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import dump_jsonl, load_jsonl
from repro.analysis.static import (
    ModuleContext,
    collect_state_baseline,
    default_rules,
    lint_modules,
    lint_repo,
    repo_root,
)
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
GOLDEN = pathlib.Path(__file__).parent / "golden" / "lint_seeded.jsonl"
ANALYZE_GOLDEN = pathlib.Path(__file__).parent / "golden" / "analyze_cc_strict.jsonl"
BASELINE = pathlib.Path(__file__).parent / "golden" / "state_contracts.json"

#: fixture file -> module name it is linted under (nothing is imported).
SEEDED = [
    ("lint_seeded_sim.py", "repro.sim.lint_seeded"),
    ("lint_seeded_gen.py", "repro.graphs.lint_seeded"),
    ("lint_seeded_bench.py", "benchmarks.lint_seeded"),
    ("lint_seeded_hot.py", "repro.sim.kernel"),
    ("lint_seeded_xval.py", "repro.xval.lint_seeded"),
]


def seeded_contexts():
    out = []
    for fname, module in SEEDED:
        path = FIXTURES / fname
        out.append(
            ModuleContext.parse(
                f"tests/fixtures/{fname}", module, path.read_text(encoding="utf-8")
            )
        )
    return out


def seeded_report(**kwargs):
    return lint_modules(seeded_contexts(), default_rules(), **kwargs)


class TestSeededViolations:
    """Each rule family fires on the fixtures with a stable id."""

    def test_every_family_fires(self):
        report = seeded_report()
        by_check = {f.check for f in report.findings}
        assert {
            "nondet-call",
            "nondet-env",
            "nondet-set-iter",
            "nondet-id-order",
            "state-missing-pair",
            "engine-direct-construct",
            "hook-event-unknown",
            "hot-loop-import",
            "gen-barrier-balance",
            "gen-op-arity",
            "gen-runblock-shape",
        } <= by_check

    def test_witness_locations_are_stable(self):
        report = seeded_report()
        src = (FIXTURES / "lint_seeded_sim.py").read_text().splitlines()
        for f in report.findings:
            assert f.file.startswith("tests/fixtures/"), f
            assert f.line is not None and f.line >= 1, f
        # each finding points at the line carrying its seeding comment
        f = next(f for f in report.findings if f.check == "nondet-call")
        assert "time.time()" in src[f.line - 1]
        f = next(f for f in report.findings if f.check == "hook-event-unknown")
        assert f.witness == {"class": "SeededHook", "method": "on_warp"}
        f = next(f for f in report.findings if f.check == "engine-direct-construct")
        assert f.witness["constructor"] == "MTAEngine"
        f = next(f for f in report.findings if f.check == "gen-op-arity")
        assert f.witness == {"tag": "FA", "got": 2, "want": 3}
        f = next(f for f in report.findings if f.check == "hot-loop-import")
        assert f.witness == {"import": "repro.obs"}

    def test_xval_package_is_in_determinism_scope(self):
        """Divergence reports are golden-compared byte for byte, so the
        determinism family must cover repro.xval (the seeded fixture
        proves the rules actually fire there)."""
        from repro.analysis.static import DETERMINISM_PACKAGES

        assert "repro.xval" in DETERMINISM_PACKAGES
        report = seeded_report()
        xval = [
            f for f in report.findings if f.file.endswith("lint_seeded_xval.py")
        ]
        assert [f.check for f in xval] == ["nondet-call"]

    def test_state_mispair_collapses_to_one_finding(self):
        # Snapshotted has both a missing from_state and an uncovered
        # mutated attr; the checker reports only the top symptom
        report = seeded_report()
        state = [f for f in report.findings if f.check.startswith("state-")]
        assert len(state) == 1
        assert state[0].check == "state-missing-pair"

    def test_golden_matches(self):
        """Byte-stable output — the lint analogue of the analyze golden."""
        report = seeded_report()
        assert dump_jsonl(report.findings) == GOLDEN.read_text()

    def test_lint_and_analyze_share_one_jsonl_schema(self):
        """The two analyzers cannot drift apart in output schema."""
        lint_findings = load_jsonl(GOLDEN.read_text())
        analyze_findings = load_jsonl(ANALYZE_GOLDEN.read_text())
        lint_keys = {k for f in lint_findings for k in f.to_dict()}
        analyze_keys = {k for f in analyze_findings for k in f.to_dict()}
        assert lint_keys == analyze_keys
        # and both round-trip byte-identically through the same codec
        assert dump_jsonl(lint_findings) == GOLDEN.read_text()
        assert dump_jsonl(analyze_findings) == ANALYZE_GOLDEN.read_text()


THREAD_PATH = "src/repro/sim/thread.py"


def thread_context(source: str) -> ModuleContext:
    return ModuleContext.parse(THREAD_PATH, "repro.sim.thread", source)


def thread_source() -> str:
    return (pathlib.Path(repo_root()) / THREAD_PATH).read_text(encoding="utf-8")


def state_findings(source: str, baseline=None) -> list:
    if baseline is None:
        baseline = json.loads(BASELINE.read_text())
    report = lint_modules(
        [thread_context(source)], default_rules(state_baseline=baseline)
    )
    return [f for f in report.findings if f.check.startswith("state-")]


class TestStateContractMutations:
    """Deliberate mutations each produce exactly one finding."""

    def test_unmodified_thread_is_clean(self):
        assert state_findings(thread_source()) == []

    def test_dropped_to_state_key(self):
        src = thread_source()
        mutated = src.replace('            "wake_at": self.wake_at,\n', "")
        assert mutated != src
        found = state_findings(mutated)
        assert len(found) == 1
        assert found[0].check == "state-attr-missing"
        assert found[0].witness["attr"] == "wake_at"
        assert found[0].witness["class"] == "repro.sim.thread.SimThread"

    def test_field_without_state_key(self):
        src = thread_source()
        mutated = src.replace(
            "    fbpos: int = 0\n",
            "    fbpos: int = 0\n    scratch: int = 0\n",
        )
        assert mutated != src
        found = state_findings(mutated)
        assert len(found) == 1
        assert found[0].check == "state-attr-missing"
        assert found[0].witness["attr"] == "scratch"

    def test_skipped_version_bump(self):
        # simulate "a key was added since the committed baseline, but
        # STATE_VERSION was not bumped": shrink the baseline's key set
        baseline = json.loads(BASELINE.read_text())
        entry = baseline["repro.sim.thread.SimThread"]
        assert "wake_at" in entry["keys"]
        entry["keys"] = [k for k in entry["keys"] if k != "wake_at"]
        found = state_findings(thread_source(), baseline=baseline)
        assert len(found) == 1
        assert found[0].check == "state-version-stale"
        assert found[0].witness["added"] == ["wake_at"]

    def test_bumped_version_accepts_new_keys(self):
        baseline = json.loads(BASELINE.read_text())
        entry = baseline["repro.sim.thread.SimThread"]
        entry["keys"] = [k for k in entry["keys"] if k != "wake_at"]
        entry["version"] = 0  # source says 1 -> the bump happened
        assert state_findings(thread_source(), baseline=baseline) == []

    def test_unknown_from_state_key(self):
        src = thread_source()
        mutated = src.replace(
            '        self.wake_at = state["wake_at"]',
            '        self.wake_at = state["wake_when"]',
        )
        assert mutated != src
        found = state_findings(mutated)
        assert len(found) == 1
        assert found[0].check == "state-key-unknown"
        assert found[0].witness["keys"] == ["wake_when"]


class TestSuppressions:
    def test_marker_suppresses_and_strict_surfaces_as_warning(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # allow_nondet: log line only\n"
        ctx = ModuleContext.parse("src/repro/sim/x.py", "repro.sim.x", src)
        report = lint_modules([ctx], default_rules())
        assert report.findings == []
        assert report.stats["suppressed_findings"] == 1
        assert report.stats["suppression_reasons"] == ["log line only"]
        strict = lint_modules([ctx], default_rules(), strict=True)
        assert len(strict.findings) == 1
        assert strict.findings[0].severity == "warning"
        assert strict.findings[0].witness["suppressed"] == "log line only"
        assert strict.ok()

    def test_reasonless_marker_does_not_suppress(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # allow_nondet\n"
        ctx = ModuleContext.parse("src/repro/sim/x.py", "repro.sim.x", src)
        report = lint_modules([ctx], default_rules())
        assert len(report.findings) == 1
        assert report.findings[0].severity == "error"

    def test_wrong_family_marker_does_not_suppress(self):
        src = "import time\n\n\ndef f():\n    return time.time()  # allow_shape: wrong family\n"
        ctx = ModuleContext.parse("src/repro/sim/x.py", "repro.sim.x", src)
        report = lint_modules([ctx], default_rules())
        assert len(report.findings) == 1


class TestRepoIsClean:
    """The acceptance invariant the CI static-lint job gates on."""

    def test_lint_repo_clean(self):
        report = lint_repo()
        assert report.findings == [], "\n" + report.render()
        # every suppression in the tree carries a reason
        assert all(report.stats["suppression_reasons"])

    def test_state_baseline_is_current(self):
        assert collect_state_baseline() == BASELINE.read_text()


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_lint_seeded_file_fails(self, tmp_path, capsys):
        # a violation in a real lintable location -> exit 1
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_direct.py").write_text(
            "from repro.sim import MTAEngine\n\n\ndef test_x():\n"
            "    return MTAEngine(p=2)\n"
        )
        from repro.analysis.static import lint_repo as lr

        report = lr(root=str(tmp_path))
        assert [f.check for f in report.findings] == ["engine-direct-construct"]

    def test_lint_jsonl_stdout(self, capsys):
        assert main(["lint", "--jsonl", "-", "--strict"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("{")]
        # the 20 annotated sites surface as warnings under --strict
        findings = load_jsonl("\n".join(lines))
        assert findings, "expected annotated findings under --strict"
        assert all(f.severity == "warning" for f in findings)

    def test_lint_rule_filter(self, capsys):
        assert main(["lint", "--rule", "determinism"]) == 0
        assert main(["lint", "--rule", "nondet-env"]) == 0

    def test_unknown_rule_is_a_usage_error(self, capsys):
        # a typo'd --rule must not silently pass the gate
        assert main(["lint", "--rule", "bogus-rule"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err and "bogus-rule" in err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["lint", "/nonexistent/nowhere.py"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_write_state_baseline_round_trips(self, tmp_path, capsys):
        out = tmp_path / "contracts.json"
        assert main(["lint", "--write-state-baseline", "--state-baseline", str(out)]) == 0
        assert out.read_text() == BASELINE.read_text()


@pytest.mark.parametrize("fname,module", SEEDED)
def test_fixtures_parse(fname, module):
    ctx = ModuleContext.parse(fname, module, (FIXTURES / fname).read_text())
    assert ctx.module == module
