"""Tests for the spanning-forest extension (repro.graphs.spanning_forest)."""

import numpy as np
import pytest

from repro.graphs.edgelist import EdgeList
from repro.graphs.generate import (
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
    star_graph,
)
from repro.graphs.spanning_forest import spanning_forest

from .conftest import nx_cc_labels


def is_acyclic_and_spanning(g: EdgeList, edge_ids: np.ndarray, labels: np.ndarray) -> bool:
    """Union-find check: forest edges never close a cycle and connect
    exactly the components of the input graph."""
    parent = list(range(g.n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in edge_ids.tolist():
        a, b = find(int(g.u[e])), find(int(g.v[e]))
        if a == b:
            return False  # cycle
        parent[a] = b
    # same partition as the true components
    roots = {}
    for v in range(g.n):
        roots.setdefault(find(v), set()).add(labels[v])
    return all(len(s) == 1 for s in roots.values())


FAMILIES = {
    "random": random_graph(250, 800, rng=0),
    "mesh": mesh2d(10, 10),
    "chain": chain_graph(200),
    "star": star_graph(150),
    "cliques": cliques_graph(5, 8),
    "forest": forest_of_chains(6, 25, rng=1),
}


class TestSpanningForest:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_forest_size_is_n_minus_components(self, name):
        g = FAMILIES[name]
        sf = spanning_forest(g, max_iter=600)
        assert sf.n_edges == g.n - sf.cc.n_components

    @pytest.mark.parametrize("name", FAMILIES)
    def test_forest_is_acyclic_and_spans(self, name):
        g = FAMILIES[name]
        sf = spanning_forest(g, max_iter=600)
        labels = nx_cc_labels(g)
        assert is_acyclic_and_spanning(g, sf.edge_ids, labels)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_labels_match_networkx(self, name):
        g = FAMILIES[name]
        sf = spanning_forest(g, max_iter=600)
        assert np.array_equal(sf.cc.labels, nx_cc_labels(g))

    def test_edge_ids_reference_input_edges(self):
        g = random_graph(100, 300, rng=3)
        sf = spanning_forest(g)
        assert sf.edge_ids.min() >= 0
        assert sf.edge_ids.max() < g.m
        assert len(np.unique(sf.edge_ids)) == sf.n_edges

    def test_deterministic(self):
        g = random_graph(120, 360, rng=4)
        a = spanning_forest(g)
        b = spanning_forest(g)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_edgeless_graph(self):
        g = EdgeList(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        sf = spanning_forest(g)
        assert sf.n_edges == 0
        assert sf.cc.n_components == 5
