"""Tests for the parallel, cached sweep runner (repro.core.runner)."""

import dataclasses

import pytest

from repro.backends import Workload
from repro.core import (
    Job,
    ResultTable,
    SweepCache,
    derive_seed,
    run_jobs,
    write_jsonl,
)
from repro.errors import ConfigurationError
from repro.workloads import fig1_jobs
from repro.workloads.specs import Fig1Spec


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, {"n": 100}) == derive_seed(7, {"n": 100})

    def test_depends_on_base_seed(self):
        assert derive_seed(7, {"n": 100}) != derive_seed(8, {"n": 100})

    def test_depends_on_parts(self):
        assert derive_seed(7, {"n": 100}) != derive_seed(7, {"n": 101})

    def test_key_order_irrelevant(self):
        assert derive_seed(7, {"a": 1, "b": 2}) == derive_seed(7, {"b": 2, "a": 1})

    def test_range(self):
        for i in range(50):
            s = derive_seed(i, "part", i * 3)
            assert 0 <= s < 1 << 62

    def test_decorrelated_from_increment(self):
        seeds = {derive_seed(0, {"n": n}) for n in range(100)}
        assert len(seeds) == 100


class TestJob:
    def test_payload_excludes_tags(self):
        w = Workload("rank", 2, 1, {"n": 64})
        a = Job(w, "smp-model", tags={"figure": "fig1"})
        b = Job(w, "smp-model", tags={"other": "label"})
        assert a.payload() == b.payload()
        assert a.key() == b.key()

    def test_key_covers_backend_options(self):
        w = Workload("rank", 2, 1, {"n": 64})
        assert (
            Job(w, "smp-model").key()
            != Job(w, "smp-model", backend_options={"use_traces": False}).key()
        )

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_jobs([], workers=-1)


def _tiny_jobs(n=64, count=3):
    return [
        Job(
            Workload("rank", 2, seed, {"n": n, "list": "random"}),
            "smp-model",
            tags={"i": seed},
        )
        for seed in range(count)
    ]


class TestRunJobs:
    def test_results_in_input_order(self):
        jobs = _tiny_jobs()
        results = run_jobs(jobs, cache=False)
        assert [r.job for r in results] == jobs

    def test_result_views(self):
        [r] = run_jobs(_tiny_jobs(count=1), cache=False)
        assert r.seconds > 0
        assert r.cycles > 0
        assert 0 <= r.utilization <= 1
        assert r.detail["backend"] == "smp-model"
        assert r.run_summary().cycles == r.cycles

    def test_progress_callback(self):
        seen = []
        run_jobs(
            _tiny_jobs(),
            cache=False,
            progress=lambda done, total, job, cached: seen.append((done, total, cached)),
        )
        assert seen == [(1, 3, False), (2, 3, False), (3, 3, False)]

    def test_write_jsonl_round_trips(self):
        import json

        results = run_jobs(_tiny_jobs(count=2), cache=False)
        lines = write_jsonl(results).splitlines()
        assert len(lines) == 2
        for line, r in zip(lines, results, strict=False):
            assert json.loads(line) == r.record


@pytest.fixture(scope="module")
def scaled_fig1_spec():
    """Fig. 1 shrunk enough to run in seconds but still a real grid."""
    return dataclasses.replace(
        Fig1Spec(), sizes=(1 << 10, 1 << 12), procs=(1, 4), seed=99
    )


def _fig1_table(results):
    table = ResultTable("fig1")
    for r in results:
        t = r.job.tags
        table.add(
            machine=t["machine"], list=t["list"], n=t["n"], p=t["p"],
            seconds=r.seconds, utilization=r.utilization,
        )
    return table


class TestDeterminismAcrossWorkers:
    """The ISSUE's regression gate: ``--workers 4`` must be
    byte-identical to a serial run of the same sweep."""

    def test_serial_matches_pool(self, scaled_fig1_spec, tmp_path):
        jobs = fig1_jobs(scaled_fig1_spec)
        serial = run_jobs(jobs, workers=1, cache=False)
        pooled = run_jobs(jobs, workers=4, cache=SweepCache(tmp_path / "cache"))

        # identical RunSummary JSONL, byte for byte
        assert write_jsonl(serial) == write_jsonl(pooled)

        # identical ResultTable rows
        rows_a = [(r.params, r.values) for r in _fig1_table(serial).rows]
        rows_b = [(r.params, r.values) for r in _fig1_table(pooled).rows]
        assert rows_a == rows_b

    def test_cache_replay_is_byte_identical(self, scaled_fig1_spec, tmp_path):
        jobs = fig1_jobs(scaled_fig1_spec)
        cache = SweepCache(tmp_path / "cache")
        cold = run_jobs(jobs, cache=cache)
        warm = run_jobs(jobs, cache=cache)
        assert all(not r.cached for r in cold)
        assert all(r.cached for r in warm)
        assert write_jsonl(cold) == write_jsonl(warm)

    def test_job_subset_reproduces_full_sweep_numbers(self, scaled_fig1_spec):
        """Per-job seeds are a pure function of the grid point, so a
        single job rerun alone equals its value inside the sweep."""
        jobs = fig1_jobs(scaled_fig1_spec)
        full = run_jobs(jobs, cache=False)
        alone = run_jobs([jobs[3]], cache=False)
        assert alone[0].record == full[3].record
