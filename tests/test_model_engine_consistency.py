"""Cross-validation: the analytic models against the cycle engines.

The analytic machine models make assumptions (stream saturation,
ordered/random cache gaps, store buffering, dynamic-scheduling
balance); the cycle engines implement the corresponding *mechanisms*.
These tests check that the two levels tell the same story on the same
workloads — not to equal numbers (the engines run tiny inputs where
startup effects matter), but to the same orderings and rough ratios.
"""


from repro.core import MTAMachine, SMPMachine
from repro.graphs.generate import random_graph
from repro.graphs.programs import simulate_mta_cc, simulate_smp_cc
from repro.graphs.sv_mta import sv_mta
from repro.lists.generate import ordered_list, random_list
from repro.lists.helman_jaja import rank_helman_jaja
from repro.lists.mta_ranking import rank_mta
from repro.lists.programs import simulate_mta_list_ranking, simulate_smp_list_ranking


class TestSMPConsistency:
    def test_ordered_random_gap_direction_agrees(self):
        n = 6000
        model_gap = (
            SMPMachine(p=2).run(rank_helman_jaja(random_list(n, 1), p=2, rng=0).steps).seconds
            / SMPMachine(p=2).run(rank_helman_jaja(ordered_list(n), p=2, rng=0).steps).seconds
        )
        engine_gap = (
            simulate_smp_list_ranking(random_list(n, 1), p=2, rng=0).report.cycles
            / simulate_smp_list_ranking(ordered_list(n), p=2, rng=0).report.cycles
        )
        assert model_gap > 1.1
        assert engine_gap > 1.1

    def test_cc_engine_and_model_agree_on_iteration_count(self):
        g = random_graph(400, 1600, rng=3)
        model_run = sv_mta(g)
        engine_run = simulate_smp_cc(g, p=2)
        # same algorithm structure: iterations within one of each other
        # (engine races can change grafting winners)
        assert abs(model_run.iterations - engine_run.iterations) <= 2


class TestMTAConsistency:
    def test_engine_utilization_reaches_model_saturation(self):
        """With ample streams the model predicts u = 1; the engine should
        get within the phase-overhead of that on a decent-sized run."""
        n = 20_000
        sim = simulate_mta_list_ranking(
            random_list(n, 2), p=1, streams_per_proc=100, nodes_per_walk=10
        )
        model_u = MTAMachine(p=1).utilization_for(n // 10)
        assert model_u == 1.0
        assert sim.report.utilization > 0.9

    def test_starved_machine_matches_model_scaling(self):
        """With few streams, engine utilization tracks the model's
        streams·lookahead/latency line within a factor of two."""
        from repro.sim import MTAEngine, isa

        for streams in (8, 16, 32):
            eng = MTAEngine(p=1, streams_per_proc=128, mem_latency=100, lookahead=2)

            def chaser():
                for i in range(40):
                    yield isa.compute(1)
                    yield isa.load_dep(i)
                    yield isa.load_dep(5000 + i)

            for _ in range(streams):
                eng.spawn(chaser())
            measured = eng.run().utilization
            predicted = MTAMachine(p=1).utilization_for(streams)
            assert predicted / 2 < measured < predicted * 2, (streams, measured, predicted)

    def test_order_insensitivity_at_both_levels(self):
        n = 4000
        m_o = MTAMachine(p=1).run(rank_mta(ordered_list(n), p=1).steps).seconds
        m_r = MTAMachine(p=1).run(rank_mta(random_list(n, 1), p=1).steps).seconds
        assert abs(m_o - m_r) < 0.05 * max(m_o, m_r)
        e_o = simulate_mta_list_ranking(ordered_list(n), p=1).report.total_issued
        e_r = simulate_mta_list_ranking(random_list(n, 1), p=1).report.total_issued
        assert abs(e_o - e_r) < 0.1 * max(e_o, e_r)

    def test_cc_engine_and_model_order_machines_identically(self):
        """Both levels must agree that the MTA finishes CC faster (in
        seconds at real clock rates) than the SMP."""
        g = random_graph(600, 2400, rng=4)
        model_mta = MTAMachine(p=4).run(sv_mta(g, p=4).steps).seconds
        from repro.graphs.sv_smp import sv_smp

        model_smp = SMPMachine(p=4).run(sv_smp(g, p=4).steps).seconds
        assert model_mta < model_smp
        eng_mta = simulate_mta_cc(g, p=4).report.seconds
        eng_smp = simulate_smp_cc(g, p=4).report.seconds
        assert eng_mta < eng_smp
