"""Smoke tests for the benchmark harness.

The benchmarks under ``benchmarks/`` are heavyweight (they regenerate
the paper's figures and tables) and run on demand, not in tier 1 — but
an import error or a renamed library symbol inside one of them should
fail fast here, not at the next archival run.  Each module is imported
fresh, and the pytest collector is exercised over the whole directory.
"""

from __future__ import annotations

import importlib
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


@pytest.fixture(scope="module", autouse=True)
def _repo_root_on_path():
    """Make the ``benchmarks`` package importable (it lives at the repo
    root, outside ``src/``)."""
    sys.path.insert(0, str(REPO_ROOT))
    try:
        yield
    finally:
        sys.path.remove(str(REPO_ROOT))


def test_benchmark_modules_discovered():
    # guards against the glob silently matching nothing
    assert len(BENCH_MODULES) >= 15
    assert "bench_table1_utilization" in BENCH_MODULES


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_benchmark_module_imports(name):
    mod = importlib.import_module(f"benchmarks.{name}")
    # every benchmark module must define at least one test for the harness
    assert any(attr.startswith("test_") for attr in dir(mod)), name


def test_benchmark_suite_collects():
    """``pytest --collect-only benchmarks`` succeeds end to end — the
    canary for conftest/fixture wiring problems."""
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "benchmarks"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "error" not in proc.stdout.lower()


# The "benchmarks go through the runner" gate that used to live here as
# a source grep is now the static linter's engine-direct-construct rule
# (repro.analysis.static.discipline), exercised in tests/test_static_lint.py
# and enforced repo-wide by `repro lint` in CI.
