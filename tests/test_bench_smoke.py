"""Smoke tests for the benchmark harness.

The benchmarks under ``benchmarks/`` are heavyweight (they regenerate
the paper's figures and tables) and run on demand, not in tier 1 — but
an import error or a renamed library symbol inside one of them should
fail fast here, not at the next archival run.  Each module is imported
fresh, and the pytest collector is exercised over the whole directory.
"""

from __future__ import annotations

import importlib
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


@pytest.fixture(scope="module", autouse=True)
def _repo_root_on_path():
    """Make the ``benchmarks`` package importable (it lives at the repo
    root, outside ``src/``)."""
    sys.path.insert(0, str(REPO_ROOT))
    try:
        yield
    finally:
        sys.path.remove(str(REPO_ROOT))


def test_benchmark_modules_discovered():
    # guards against the glob silently matching nothing
    assert len(BENCH_MODULES) >= 15
    assert "bench_table1_utilization" in BENCH_MODULES


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_benchmark_module_imports(name):
    mod = importlib.import_module(f"benchmarks.{name}")
    # every benchmark module must define at least one test for the harness
    assert any(attr.startswith("test_") for attr in dir(mod)), name


def test_benchmark_suite_collects():
    """``pytest --collect-only benchmarks`` succeeds end to end — the
    canary for conftest/fixture wiring problems."""
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "benchmarks"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "error" not in proc.stdout.lower()


BANNED_CONSTRUCTORS = (
    "SMPMachine(",
    "MTAMachine(",
    "ClusterMachine(",
    "SMPEngine(",
    "MTAEngine(",
)

# bench_table1_utilization compares an engine's summary against its raw
# report — an internals check that legitimately calls simulate_* itself.
SIMULATE_ALLOWED = {"bench_table1_utilization"}

# bench_engine_throughput measures the simulation kernel's interpreter
# dispatch loop itself (host ops/second over synthetic instruction
# streams); constructing the engines directly is the measurement.
CONSTRUCT_ALLOWED = {"bench_engine_throughput"}


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_benchmarks_go_through_the_runner(name):
    """ISSUE acceptance gate: every benchmark routes execution through
    the sweep runner — zero direct machine/engine construction."""
    source = (BENCH_DIR / f"{name}.py").read_text(encoding="utf-8")
    if name not in CONSTRUCT_ALLOWED:
        for pattern in BANNED_CONSTRUCTORS:
            assert pattern not in source, (
                f"{name} constructs {pattern[:-1]} directly; submit a Job to"
                " repro.core.run_jobs instead"
            )
    if name not in SIMULATE_ALLOWED:
        assert "simulate_" not in source, (
            f"{name} calls a simulate_* entry point directly; use the"
            " engine backends via the sweep runner"
        )
