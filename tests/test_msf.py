"""Tests for the Borůvka minimum spanning forest (repro.graphs.msf)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MTAMachine, SMPMachine
from repro.errors import SimulationError, WorkloadError
from repro.graphs.edgelist import EdgeList
from repro.graphs.generate import (
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
)
from repro.graphs.msf import minimum_spanning_forest
from repro.graphs.sequential_cc import cc_union_find


def nx_msf_weight(g, w):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    for i, (a, b) in enumerate(zip(g.u.tolist(), g.v.tolist(), strict=False)):
        G.add_edge(a, b, weight=float(w[i]))
    return sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(G, data=True))


def assert_forest(g, edge_ids):
    parent = list(range(g.n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in edge_ids.tolist():
        a, b = find(int(g.u[e])), find(int(g.v[e]))
        assert a != b, "cycle in forest"
        parent[a] = b


FAMILIES = {
    "random": random_graph(400, 1600, rng=0),
    "mesh": mesh2d(14, 15),
    "forest": forest_of_chains(5, 40, rng=1),
    "cliques": cliques_graph(4, 9),
    "chain": chain_graph(200),
}


class TestMSFCorrectness:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_weight_matches_networkx(self, name):
        g = FAMILIES[name]
        w = np.random.default_rng(7).random(g.m) * 100
        run = minimum_spanning_forest(g, w)
        assert run.weight == pytest.approx(nx_msf_weight(g, w))

    @pytest.mark.parametrize("name", FAMILIES)
    def test_forest_structure(self, name):
        g = FAMILIES[name]
        w = np.random.default_rng(8).random(g.m)
        run = minimum_spanning_forest(g, w)
        ref = cc_union_find(g)
        assert np.array_equal(run.labels, ref.labels)
        assert run.n_edges == g.n - ref.n_components
        assert_forest(g, run.edge_ids)

    def test_uniform_weights_tie_broken_deterministically(self):
        g = random_graph(200, 800, rng=3)
        w = np.ones(g.m)
        a = minimum_spanning_forest(g, w)
        b = minimum_spanning_forest(g, w)
        assert np.array_equal(a.edge_ids, b.edge_ids)
        assert_forest(g, a.edge_ids)

    def test_edgeless_graph(self):
        g = EdgeList(6, np.empty(0, np.int64), np.empty(0, np.int64))
        run = minimum_spanning_forest(g, np.empty(0))
        assert run.n_edges == 0
        assert run.weight == 0.0

    def test_logarithmic_iterations(self):
        g = chain_graph(1024)
        w = np.random.default_rng(0).random(g.m)
        run = minimum_spanning_forest(g, w)
        assert run.iterations <= math.ceil(math.log2(1024)) + 2

    def test_components_at_least_halve(self):
        g = random_graph(512, 2048, rng=1)
        w = np.random.default_rng(1).random(g.m)
        run = minimum_spanning_forest(g, w)
        comps = run.stats["components_history"]
        # each round the number of live components drops by >= 2x until done
        for a, b in zip(comps, comps[1:], strict=False):
            assert b <= a


class TestMSFInstrumentation:
    def test_timeable_on_both_machines(self):
        g = random_graph(1000, 5000, rng=2)
        w = np.random.default_rng(2).random(g.m)
        run = minimum_spanning_forest(g, p=8, weights=w)
        t_mta = MTAMachine(p=8).run(run.steps).seconds
        t_smp = SMPMachine(p=8).run(run.steps).seconds
        assert 0 < t_mta < t_smp  # the usual architectural ordering

    def test_three_barriers_per_round(self):
        g = random_graph(100, 300, rng=1)
        run = minimum_spanning_forest(g, np.random.default_rng(0).random(g.m))
        assert run.triplet.b == 3 * run.iterations


class TestMSFErrors:
    def test_weight_shape_checked(self):
        g = chain_graph(5)
        with pytest.raises(WorkloadError):
            minimum_spanning_forest(g, np.ones(3))

    def test_empty_graph_rejected(self):
        with pytest.raises(WorkloadError):
            minimum_spanning_forest(
                EdgeList(0, np.empty(0, np.int64), np.empty(0, np.int64)), np.empty(0)
            )

    def test_max_iter_guard(self):
        # alternating light/heavy weights on a chain create local minima,
        # so components merge pairwise and one round cannot finish
        g = chain_graph(64)
        w = np.tile([0.0, 1.0], g.m // 2 + 1)[: g.m]
        with pytest.raises(SimulationError):
            minimum_spanning_forest(g, w, max_iter=1)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=60),
    m=st.integers(min_value=0, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_msf_weight_optimal(n, m, seed):
    rng = np.random.default_rng(seed)
    g = EdgeList(
        n, rng.integers(0, n, m).astype(np.int64), rng.integers(0, n, m).astype(np.int64)
    ).canonical()
    w = rng.random(g.m)
    run = minimum_spanning_forest(g, w)
    assert run.weight == pytest.approx(nx_msf_weight(g, w))
    assert_forest(g, run.edge_ids)
    ref = cc_union_find(g)
    assert run.n_edges == g.n - ref.n_components
