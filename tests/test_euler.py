"""Tests for the Euler-tour technique (repro.lists.euler)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.graphs.edgelist import EdgeList
from repro.lists.euler import euler_tour_successors, root_tree
from repro.lists.generate import TAIL, validate_list


def chain_tree(n):
    idx = np.arange(n - 1, dtype=np.int64)
    return EdgeList(n, idx, idx + 1)


def star_tree(n):
    leaves = np.arange(1, n, dtype=np.int64)
    return EdgeList(n, np.zeros(n - 1, dtype=np.int64), leaves)


def random_tree(n, seed):
    """Random tree via a random parent function (Prüfer-ish)."""
    rng = np.random.default_rng(seed)
    parent = np.array(
        [rng.integers(0, max(v, 1)) for v in range(n)], dtype=np.int64
    )
    u = np.arange(1, n, dtype=np.int64)
    return EdgeList(n, parent[1:], u)


def reference_rooting(tree: EdgeList, root: int):
    """Parents/depths/sizes by plain BFS + bottom-up accumulation."""
    indptr, indices = tree.adjacency_csr()
    n = tree.n
    parent = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    order = []
    depth[root] = 0
    frontier = [root]
    while frontier:
        order.extend(frontier)
        nxt = []
        for f in frontier:
            for w in indices[indptr[f] : indptr[f + 1]]:
                if depth[w] < 0:
                    depth[w] = depth[f] + 1
                    parent[w] = f
                    nxt.append(int(w))
        frontier = nxt
    size = np.ones(n, dtype=np.int64)
    for v in reversed(order):
        if parent[v] >= 0:
            size[parent[v]] += size[v]
    return parent, depth, size


TREES = {
    "chain": chain_tree(50),
    "star": star_tree(40),
    "random60": random_tree(60, 1),
    "random200": random_tree(200, 2),
}


class TestEulerTour:
    @pytest.mark.parametrize("name", TREES)
    def test_tour_is_a_valid_list_over_all_arcs(self, name):
        tree = TREES[name]
        tour = euler_tour_successors(tree, root=0)
        assert tour.n_arcs == 2 * tree.m
        validate_list(tour.succ)

    def test_single_vertex(self):
        tour = euler_tour_successors(EdgeList(1, np.empty(0, np.int64), np.empty(0, np.int64)))
        assert tour.n_arcs == 0

    def test_single_edge(self):
        tour = euler_tour_successors(EdgeList(2, np.array([0]), np.array([1])), root=0)
        assert tour.n_arcs == 2
        assert (tour.succ == TAIL).sum() == 1

    def test_reverse_arc_involution(self):
        tour = euler_tour_successors(TREES["random60"], root=0)
        arcs = np.arange(tour.n_arcs)
        assert np.array_equal(tour.reverse_arc(tour.reverse_arc(arcs)), arcs)

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(WorkloadError):
            euler_tour_successors(EdgeList(3, np.array([0]), np.array([1])))

    def test_cycle_plus_isolated_rejected(self):
        # 3 edges on 4 vertices but a triangle + isolated vertex
        bad = EdgeList(4, np.array([0, 1, 2]), np.array([1, 2, 0]))
        with pytest.raises(WorkloadError):
            euler_tour_successors(bad, root=0)

    def test_bad_root_rejected(self):
        with pytest.raises(WorkloadError):
            euler_tour_successors(chain_tree(5), root=9)


class TestRootTree:
    @pytest.mark.parametrize("name", TREES)
    @pytest.mark.parametrize("method", ["mta", "smp"])
    def test_matches_bfs_reference(self, name, method):
        tree = TREES[name]
        parent, depth, size = reference_rooting(tree, 0)
        rt = root_tree(tree, root=0, p=4, method=method, rng=0)
        assert np.array_equal(rt.parent, parent)
        assert np.array_equal(rt.depth, depth)
        assert np.array_equal(rt.subtree_size, size)

    @pytest.mark.parametrize("root", [0, 3, 19])
    def test_any_root(self, root):
        tree = random_tree(20, 5)
        parent, depth, size = reference_rooting(tree, root)
        rt = root_tree(tree, root=root, p=2)
        assert np.array_equal(rt.parent, parent)
        assert np.array_equal(rt.depth, depth)
        assert np.array_equal(rt.subtree_size, size)

    def test_costs_attached(self):
        rt = root_tree(TREES["random200"], p=4)
        assert rt.steps[0].name == "euler.build-tour"
        assert any(s.name.startswith("euler.rank") for s in rt.steps)
        assert any(s.name.startswith("euler.depth") for s in rt.steps)
        # total barrier count is positive and finite
        assert sum(s.barriers for s in rt.steps) > 0

    def test_subtree_sizes_sum_along_root_path(self):
        rt = root_tree(TREES["chain"], root=0, p=1)
        # chain rooted at one end: size[v] = n - v
        n = TREES["chain"].n
        assert rt.subtree_size.tolist() == [n - v for v in range(n)]

    def test_bad_method_rejected(self):
        with pytest.raises(WorkloadError):
            root_tree(chain_tree(4), method="gpu")


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31),
    root_pick=st.integers(min_value=0, max_value=10**6),
)
def test_property_rooting_matches_reference(n, seed, root_pick):
    tree = random_tree(n, seed)
    root = root_pick % n
    parent, depth, size = reference_rooting(tree, root)
    rt = root_tree(tree, root=root, p=3)
    assert np.array_equal(rt.parent, parent)
    assert np.array_equal(rt.depth, depth)
    assert np.array_equal(rt.subtree_size, size)
    # global invariants
    assert rt.subtree_size[root] == n
    assert int(rt.depth.max()) < n
    assert (rt.parent == -1).sum() == 1


class TestTourTimestamps:
    def test_preorder_root_first_parents_before_children(self):
        tree = random_tree(80, 9)
        rt = root_tree(tree, root=0, p=2)
        order = rt.preorder()
        assert order[0] == 0
        position = np.empty(80, dtype=np.int64)
        position[order] = np.arange(80)
        for v in range(80):
            if rt.parent[v] >= 0:
                assert position[rt.parent[v]] < position[v]

    def test_is_ancestor_matches_parent_chains(self):
        tree = random_tree(60, 4)
        rt = root_tree(tree, root=0, p=1)

        def chain_ancestor(a, b):
            while b != -1:
                if b == a:
                    return True
                b = int(rt.parent[b])
            return False

        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = int(rng.integers(0, 60)), int(rng.integers(0, 60))
            assert bool(rt.is_ancestor(a, b)) == chain_ancestor(a, b), (a, b)

    def test_is_ancestor_vectorized(self):
        tree = chain_tree(10)
        rt = root_tree(tree, root=0)
        a = np.zeros(10, dtype=np.int64)
        b = np.arange(10)
        assert rt.is_ancestor(a, b).all()  # root ancestors everyone
        assert rt.is_ancestor(b, a)[1:].sum() == 0  # nobody ancestors the root

    def test_entry_exit_bracket_subtree(self):
        tree = random_tree(40, 7)
        rt = root_tree(tree, root=0)
        for v in range(1, 40):
            inside = np.flatnonzero(rt.is_ancestor(v, np.arange(40)))
            assert len(inside) == rt.subtree_size[v]


class TestSingleVertexTimestamps:
    def test_single_vertex_tree_timestamps(self):
        t1 = EdgeList(1, np.empty(0, np.int64), np.empty(0, np.int64))
        rt = root_tree(t1)
        assert rt.entry.tolist() == [-1]
        assert rt.exit.tolist() == [0]
        assert rt.preorder().tolist() == [0]
        assert bool(rt.is_ancestor(0, 0))
