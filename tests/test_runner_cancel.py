"""Regression tests for sweep cancellation (repro.core.runner).

A ``KeyboardInterrupt`` or a fired ``cancel`` hook mid-sweep must shut
the worker pool down cleanly — queued futures cancelled, no orphan
worker processes — and surface the partial results through
:class:`SweepCancelled`, with unfinished jobs marked ``cancelled``
rather than silently dropped.
"""

import multiprocessing
import threading
import time

import pytest

import repro.core.runner as runner_mod
from repro.backends import Workload
from repro.core import Job, SweepCancelled, run_jobs


def _jobs(count=4, n=256):
    return [
        Job(Workload("rank", 2, seed, {"n": n, "list": "random"}), "smp-model")
        for seed in range(count)
    ]


class TestSerialCancellation:
    def test_keyboard_interrupt_marks_unfinished_cancelled(self, monkeypatch):
        real = runner_mod._execute_payload
        calls = []

        def interrupt_on_second(payload):
            calls.append(payload["workload"]["seed"])
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(payload)

        monkeypatch.setattr(runner_mod, "_execute_payload", interrupt_on_second)
        with pytest.raises(SweepCancelled) as exc:
            run_jobs(_jobs(4), cache=False)
        partial = exc.value.results
        assert len(partial) == 4
        assert not partial[0].cancelled and partial[0].record
        assert [r.cancelled for r in partial[1:]] == [True] * 3
        assert all(r.record == {} for r in partial[1:])

    def test_cancel_hook_stops_between_jobs(self):
        fired = threading.Event()
        seen = []

        def progress(done, total, job, cached):
            seen.append(done)
            fired.set()  # cancel after the first completion

        with pytest.raises(SweepCancelled) as exc:
            run_jobs(_jobs(3), cache=False, progress=progress, cancel=fired.is_set)
        assert seen == [1]
        partial = exc.value.results
        assert [r.cancelled for r in partial] == [False, True, True]
        assert "1/3" in str(exc.value)

    def test_cancel_before_start_cancels_everything(self):
        with pytest.raises(SweepCancelled) as exc:
            run_jobs(_jobs(2), cache=False, cancel=lambda: True)
        assert [r.cancelled for r in exc.value.results] == [True, True]

    def test_results_keep_input_order(self):
        fired = threading.Event()
        with pytest.raises(SweepCancelled) as exc:
            run_jobs(
                _jobs(3),
                cache=False,
                progress=lambda *a: fired.set(),
                cancel=fired.is_set,
            )
        jobs = _jobs(3)
        assert [r.job for r in exc.value.results] == jobs


class TestPoolCancellation:
    def test_cancel_hook_shuts_pool_down(self):
        """A fired cancel hook mid-pool-sweep raises SweepCancelled and
        leaves no worker processes behind."""
        fired = threading.Event()

        def progress(done, total, job, cached):
            fired.set()

        with pytest.raises(SweepCancelled) as exc:
            run_jobs(
                _jobs(8, n=2048),
                workers=2,
                cache=False,
                progress=progress,
                cancel=fired.is_set,
            )
        partial = exc.value.results
        assert len(partial) == 8
        assert any(r.cancelled for r in partial)
        assert all(r.record for r in partial if not r.cancelled)

        # the pool was shut down with wait=True: workers are reaped
        deadline = time.monotonic() + 10
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_completed_jobs_match_uncancelled_run(self):
        """Whatever finished before the cancel is byte-identical to the
        same job in an uninterrupted sweep (determinism survives)."""
        fired = threading.Event()
        with pytest.raises(SweepCancelled) as exc:
            run_jobs(
                _jobs(4),
                workers=2,
                cache=False,
                progress=lambda *a: fired.set(),
                cancel=fired.is_set,
            )
        full = run_jobs(_jobs(4), cache=False)
        by_key = {r.job.key(): r.record for r in full}
        for r in exc.value.results:
            if not r.cancelled:
                assert r.record == by_key[r.job.key()]


class TestSweepCancelledType:
    def test_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(SweepCancelled, ReproError)

    def test_cancelled_placeholder_views(self):
        from repro.core.runner import JobResult

        r = JobResult(job=_jobs(1)[0], record={}, cancelled=True)
        assert r.cancelled
        with pytest.raises(KeyError):
            r.summary
