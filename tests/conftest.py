"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


def nx_cc_labels(g):
    """Canonical component labels via networkx — the external reference."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(zip(g.u.tolist(), g.v.tolist(), strict=False))
    labels = np.empty(g.n, dtype=np.int64)
    for comp in nx.connected_components(G):
        root = min(comp)
        for v in comp:
            labels[v] = root
    return labels
