"""The unified simulation kernel: HookBus, watchdog, machine registry.

The engine-equivalence suite (``test_engine_equivalence.py``) pins the
refactor's behavior to the pre-kernel goldens; this file tests the new
surfaces the kernel added — the single instrumentation bus, the unified
watchdog ``budget`` with its blocked-inventory diagnosis, phase-slice
closure on mid-phase aborts, and the machine-model registry with its
backend auto-registration (``mta-next`` end to end).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WatchdogExceeded
from repro.sim import (
    HOOK_EVENTS,
    INTERLEAVED,
    HookBus,
    MTAEngine,
    SMPEngine,
    isa,
    list_machines,
    machine_spec,
    register_machine,
)
from repro.sim.mta_next import MTANextEngine, MTANextMachine


class _Recorder:
    """Hook implementing every event: appends (event, args) tuples."""

    def __init__(self):
        self.events = []

    def __getattr__(self, name):
        if name in HOOK_EVENTS:
            return lambda *a, _n=name: self.events.append((_n, a))
        raise AttributeError(name)

    def names(self):
        return [n for n, _ in self.events]


class _EndOnly:
    def __init__(self):
        self.reports = []

    def end_run(self, report):
        self.reports.append(report)


class TestHookBus:
    def test_listeners_none_when_empty(self):
        bus = HookBus()
        for event in HOOK_EVENTS:
            assert bus.listeners(event) is None

    def test_listeners_filter_by_implemented_subset(self):
        bus = HookBus()
        hook = _EndOnly()
        bus.add(hook)
        assert bus.listeners("on_op") is None
        (fn,) = bus.listeners("end_run")
        fn("report")
        assert hook.reports == ["report"]

    def test_add_invalidates_listener_cache(self):
        bus = HookBus()
        assert bus.listeners("end_run") is None  # cached as disabled
        bus.add(_EndOnly())
        assert bus.listeners("end_run") is not None

    def test_fan_out_preserves_attach_order(self):
        bus = HookBus()
        order = []
        first, second = _EndOnly(), _EndOnly()
        first.end_run = lambda r: order.append("first")
        second.end_run = lambda r: order.append("second")
        bus.add(first)
        bus.add(second)
        bus.emit("end_run", None)
        assert order == ["first", "second"]

    def test_engine_delivers_full_event_stream(self):
        rec = _Recorder()
        eng = MTAEngine(p=1, streams_per_proc=2, hooks=(rec,))
        eng.register_barrier("b", 2)
        eng.set_counter(7, 0)
        eng.set_full(9, 5)

        def prog():
            yield isa.compute(1)
            got = yield isa.fetch_add(7, 1)
            assert got in (0, 1)
            yield isa.phase(f"worker")
            yield isa.barrier("b")

        eng.spawn(prog())
        eng.spawn(prog())
        report = eng.run("hooked")
        names = rec.names()
        # setup events, in declaration order
        assert names[0] == "attach_engine"
        assert rec.events[0][1] == ("mta", 1)
        assert "register_barrier" in names
        assert "init_counter" in names
        assert "init_full" in names
        # run events
        assert "on_run_start" in names
        assert "on_op" in names
        assert "on_phase" in names
        assert "on_barrier_release" in names
        assert names[-1] == "end_run"
        assert rec.events[-1][1][0] is report

    def test_smp_engine_accepts_extra_hooks(self):
        rec = _Recorder()
        eng = SMPEngine(p=2, hooks=(rec,))

        def prog():
            yield isa.compute(3)
            yield isa.barrier("sync")

        eng.attach(prog())
        eng.attach(prog())
        eng.run("t")
        names = rec.names()
        assert names[0] == "attach_engine"
        assert rec.events[0][1] == ("smp", 2)
        assert "on_barrier_release" in names
        assert names[-1] == "end_run"


class TestWatchdog:
    def test_mta_budget_carries_blocked_inventory(self):
        eng = MTAEngine(p=1, streams_per_proc=2)
        eng.register_barrier("never", 2)

        def stuck():
            yield isa.compute(1)
            yield isa.barrier("never")

        def spinner():
            while True:
                yield isa.compute(1)

        eng.spawn(stuck())
        eng.spawn(spinner())
        with pytest.raises(WatchdogExceeded) as ei:
            eng.run("t", budget=50)
        exc = ei.value
        assert "max_cycles=50" in str(exc)
        assert exc.budget == 50
        barrier_rows = [r for r in exc.blocked if r.get("barrier") == "never"]
        assert barrier_rows and barrier_rows[0]["need"] == 2

    def test_mta_max_cycles_alias_still_works(self):
        eng = MTAEngine(p=1, streams_per_proc=1)

        def spinner():
            while True:
                yield isa.compute(1)

        eng.spawn(spinner())
        with pytest.raises(WatchdogExceeded, match="max_cycles=25"):
            eng.run("t", max_cycles=25)

    def test_smp_budget_counts_scheduling_steps(self):
        eng = SMPEngine(p=1)

        def spinner():
            while True:
                yield isa.compute(1)

        eng.attach(spinner())
        with pytest.raises(WatchdogExceeded, match="max_ops=30") as ei:
            eng.run("t", budget=30)
        assert ei.value.budget == 30

    def test_mid_phase_abort_closes_open_slice(self):
        """An aborted run's phase partition is closed at the abort point:
        every slice has an end, and no boundary exceeds the abort cycle."""
        eng = MTAEngine(p=1, streams_per_proc=1)

        def prog():
            yield isa.compute(5)
            yield isa.phase("endless")
            while True:
                yield isa.compute(1)

        eng.spawn(prog())
        with pytest.raises(WatchdogExceeded) as ei:
            eng.run("t", budget=40)
        phases = ei.value.phases
        assert phases, "abort should still deliver the phase partition"
        assert [s.name for s in phases][:2] == ["t", "endless"]
        for s in phases:
            assert s.end is not None
            assert s.start <= s.end <= 41  # clamped at the abort cycle
        assert phases[-1].name == "endless"

    def test_full_empty_waiters_in_blocked_inventory(self):
        eng = MTAEngine(p=1, streams_per_proc=2)

        def reader():
            yield isa.sync_load_consume(123)

        def spinner():
            while True:
                yield isa.compute(1)

        eng.spawn(reader())
        eng.spawn(spinner())
        with pytest.raises(WatchdogExceeded) as ei:
            eng.run("t", budget=20)
        rows = ei.value.blocked
        assert {"tid": 0, "state": "wait-full", "addr": 123} in rows


class TestMachineRegistry:
    def test_builtins_registered(self):
        names = [m.name for m in list_machines()]
        assert {"smp", "mta", "mta-next"} <= set(names)

    def test_unknown_machine_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            machine_spec("pdp-11")

    def test_spec_fields(self):
        spec = machine_spec("mta-next")
        assert spec.engine is MTANextEngine
        assert spec.scheduling == INTERLEAVED
        assert spec.backend == "mta-next-engine"
        # built-ins keep their bespoke backends
        assert machine_spec("mta").backend is None
        assert machine_spec("smp").backend is None

    def test_register_machine_auto_registers_backend(self):
        from repro.backends import describe, names
        from repro.backends.registry import _REGISTRY
        from repro.sim.machines import _MACHINES

        register_machine(
            "toy-mta",
            MTAEngine,
            scheduling=INTERLEAVED,
            kinds=("rank",),
            description="registry test machine",
        )
        try:
            assert "toy-mta-engine" in names()
            row = next(r for r in describe() if r["name"] == "toy-mta-engine")
            assert row["machine"] == "toy-mta"
            assert row["hooks"] == list(HOOK_EVENTS)
            assert row["level"] == "engine"
        finally:
            _MACHINES.pop("toy-mta", None)
            _REGISTRY.pop("toy-mta-engine", None)

    def test_duplicate_machine_needs_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_machine("mta", MTAEngine, scheduling=INTERLEAVED)


class TestMTANext:
    def test_machine_defaults(self):
        eng = MTANextEngine()
        assert eng.streams_per_proc == 64
        assert eng.mem_latency == 400
        assert eng.n_banks == 4096
        assert eng.clock_hz == 500e6
        assert isinstance(eng.model, MTANextMachine)
        assert eng.model.kind == "mta-next"

    def test_runs_programs_like_the_mta(self):
        eng = MTANextEngine(p=2)
        eng.set_counter(5, 0)

        def worker():
            while True:
                i = yield isa.fetch_add(5, 1)
                if i >= 20:
                    return
                yield isa.load_dep(1000 + i)
                yield isa.compute(1)

        for _ in range(8):
            eng.spawn(worker())
        report = eng.run("walk")
        assert report.cycles > 0
        # the memory system is 4x slower than stock: same program on a
        # stock MTA with matching streams finishes in fewer cycles
        ref = MTAEngine(p=2, streams_per_proc=64)
        ref.set_counter(5, 0)
        for _ in range(8):
            ref.spawn(worker())
        assert ref.run("walk").cycles < report.cycles

    def test_backend_end_to_end(self):
        """A registered machine is reachable through the backend layer
        with zero bespoke plumbing: prepare + execute a rank workload."""
        from repro.backends import Workload, create

        summary = create("mta-next-engine").run(
            Workload(
                "rank",
                2,
                1,
                {"n": 96, "list": "random"},
                {"streams_per_proc": 8, "nodes_per_walk": 4},
            )
        )
        assert summary.cycles > 0
        assert 0.0 <= summary.utilization <= 1.0
        assert summary.detail["backend"] == "mta-next-engine"

    def test_chase_uses_machine_factory(self):
        from repro.backends import Workload, create

        summary = create("mta-next-engine").run(
            Workload("chase", 1, 0, {"chasers": 4}, {"steps": 4, "streams_per_proc": 8})
        )
        assert summary.cycles > 0
        assert summary.detail["backend"] == "mta-next-engine"


class TestContentionMonitor:
    def test_accumulates_across_runs(self):
        from repro.obs import ContentionMonitor

        monitor = ContentionMonitor()
        for _ in range(2):
            eng = MTAEngine(p=1, streams_per_proc=4, hooks=(monitor,))
            eng.set_counter(3, 0)

            def worker():
                while True:
                    i = yield isa.fetch_add(3, 1)
                    if i >= 16:
                        return
                    yield isa.compute(1)

            for _ in range(4):
                eng.spawn(worker())
            eng.run("fa")
        assert monitor.runs == 2
        assert 3 in monitor.profile.fa_sites
        ops, _stalls = monitor.profile.fa_sites[3]
        assert ops >= 2 * 16  # both runs' traffic merged


class TestSMPExplicitBarrier:
    def test_register_barrier_with_subset_count(self):
        """SMP barriers are implicit (need=p) unless explicitly
        registered; an explicit registration with a smaller count
        releases without the other processors."""
        eng = SMPEngine(p=3)
        eng.register_barrier("pair", 2)

        def pair():
            yield isa.compute(1)
            yield isa.barrier("pair")

        def loner():
            yield isa.compute(50)

        eng.attach(pair())
        eng.attach(pair())
        eng.attach(loner())
        report = eng.run("t")
        assert report.cycles > 0
