"""Golden-equivalence suite: the kernel refactor is behavior-preserving.

Every registered paper program (``repro.workloads.paper_programs``) runs
end to end on its cycle-engine backend and the resulting
:class:`~repro.obs.RunSummary` — cycles, per-phase slices, op counts,
and the engine's full contention ``detail`` dict — is compared **byte
for byte** against a golden JSON snapshot under ``tests/golden/``.  A
second set of snapshots pins the Chrome-trace export of phase-level
traced runs, so the tracer integration (span boundaries, timeline
offsets, process naming) is covered too.

The snapshots were generated from the pre-kernel engines (the
hand-rolled ``SMPEngine`` / ``MTAEngine`` interpreter loops), so any
behavioural drift introduced by the unified simulation kernel — a
scheduling change, a cost-model change, a phase-slice boundary shift —
fails here with a JSON diff rather than a silent cycle-count change.

To regenerate after an *intended* engine change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_engine_equivalence.py

then review the diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

import pytest

from repro.backends import create
from repro.obs import Tracer, chrome_trace_json
from repro.workloads import paper_programs

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

PROGRAMS = {name.replace("/", "_"): (w, b) for name, w, b in paper_programs()}


def _canon(obj):
    """JSON-ready deep copy: numpy scalars to Python, dict keys to str."""
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return obj


def _check_bytes(name: str, text: str, *, regen_write: bool = True) -> None:
    path = GOLDEN_DIR / name
    if REGEN and regen_write:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
    assert path.exists(), (
        f"golden snapshot missing; regenerate with REPRO_REGEN_GOLDEN=1 ({path})"
    )
    assert text == path.read_text(), (
        f"{name}: engine output deviates from the golden snapshot; if the "
        "change is intended, regenerate with REPRO_REGEN_GOLDEN=1 and review "
        "the diff"
    )


@pytest.mark.parametrize("tier", [None, "vector"])
@pytest.mark.parametrize("slug", sorted(PROGRAMS))
def test_paper_program_report_golden(slug, tier):
    """SimReport-derived summaries are byte-identical across the refactor
    — and across execution tiers: the ``tier="vector"`` runs compare
    against the *same* golden snapshots as the default-tier runs (which
    is why they never write on REGEN), so the vectorized fast path is
    pinned to the interpreted engines' exact output on every paper
    program."""
    workload, backend_name = PROGRAMS[slug]
    if tier is not None:
        workload = dataclasses.replace(
            workload, options={**workload.options, "tier": tier}
        )
    backend = create(backend_name)
    summary = backend.execute(backend.prepare(workload))
    text = json.dumps(_canon(summary.to_dict()), sort_keys=True, indent=1) + "\n"
    _check_bytes(f"equiv_{slug}.json", text, regen_write=tier is None)


#: Programs re-run under a phase-level tracer; their Chrome-trace export
#: (spans, offsets, metadata) is snapshotted as well.  Sync kwargs with
#: the matching ``paper_programs`` entries.
_TRACED = sorted(
    s for s in PROGRAMS if PROGRAMS[s][1] in ("mta-engine", "smp-engine")
    and PROGRAMS[s][0].kind in ("rank", "cc")
)


@pytest.mark.parametrize("tier", [None, "vector"])
@pytest.mark.parametrize("slug", _TRACED)
def test_paper_program_chrome_trace_golden(slug, tier):
    """Phase-level traces are tier-independent too (a phase tracer does
    not demand per-op fidelity, so the vector tier must reproduce the
    identical span boundaries)."""
    workload, backend_name = PROGRAMS[slug]
    tracer = Tracer(level="phase")
    opt = workload.options
    data = create(backend_name).prepare(workload).data
    if backend_name == "mta-engine":
        kw = {"streams_per_proc": int(opt.get("streams_per_proc", 100))}
        if tier is not None:
            kw["engine_kwargs"] = {"tier": tier}
        if workload.kind == "rank":
            from repro.lists.programs import simulate_mta_list_ranking

            simulate_mta_list_ranking(data, p=workload.p, tracer=tracer, **kw)
        else:
            from repro.graphs.programs import simulate_mta_cc

            simulate_mta_cc(data, p=workload.p, tracer=tracer, **kw)
    else:
        kw = {} if tier is None else {"tier": tier}
        if workload.kind == "rank":
            from repro.lists.programs import simulate_smp_list_ranking

            simulate_smp_list_ranking(data, p=workload.p, rng=workload.seed,
                                      tracer=tracer, **kw)
        else:
            from repro.graphs.programs import simulate_smp_cc

            simulate_smp_cc(data, p=workload.p, tracer=tracer, **kw)
    _check_bytes(f"equiv_trace_{slug}.json", chrome_trace_json(tracer.events) + "\n",
                 regen_write=tier is None)
