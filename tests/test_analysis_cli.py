"""The ``repro analyze`` command: exit codes, JSONL export, golden output."""

import json
import pathlib

from repro.analysis import dump_jsonl, load_jsonl
from repro.cli import main

GOLDEN = pathlib.Path(__file__).parent / "golden" / "analyze_cc_strict.jsonl"

#: The exact invocation that produced the golden file.  Everything that
#: feeds the op stream is pinned (seed, sizes, backend), so the strict
#: findings for the annotated Shiloach–Vishkin races are reproducible
#: byte for byte.
GOLDEN_ARGV = [
    "analyze", "--workload", "cc", "--backend", "smp-engine",
    "--p", "2", "--seed", "7", "--n", "64",
    "--param", "graph=random", "--param", "m=256",
    "--strict", "--max-findings", "8",
]


class TestExitCodes:
    def test_clean_workload_exits_zero(self, capsys):
        rc = main(["analyze", "--workload", "rank", "--n", "128", "--p", "2",
                   "--seed", "3", "--opt", "streams_per_proc=8"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_all_programs_exit_zero(self, capsys):
        assert main(["analyze", "--all"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ": clean" in ln]
        assert len(lines) == 6
        assert any("fig2/cc/mta/sv" in ln for ln in lines)

    def test_strict_findings_exit_one(self, capsys):
        assert main(GOLDEN_ARGV) == 1
        out = capsys.readouterr().out
        assert "error(s)" in out and "race" in out

    def test_workload_plus_all_is_usage_error(self, capsys):
        assert main(["analyze", "--all", "--workload", "cc"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_missing_workload_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "--workload or --all" in capsys.readouterr().err

    def test_model_backend_is_usage_error(self, capsys):
        rc = main(["analyze", "--workload", "cc", "--backend", "smp-model",
                   "--n", "64", "--param", "graph=random", "--param", "m=256"])
        assert rc == 2
        assert "not a cycle engine" in capsys.readouterr().err


class TestJsonl:
    def test_stdout_jsonl_is_pure_records(self, capsys):
        assert main(GOLDEN_ARGV + ["--jsonl", "-"]) == 1
        out = capsys.readouterr().out
        records = []
        for line in out.splitlines():
            if line.startswith("{"):
                records.append(json.loads(line))
            else:
                # only the per-program status line is allowed besides records
                assert "error(s)" in line
        assert len(records) == 8
        assert all(r["check"] == "race" for r in records)

    def test_file_output_matches_golden(self, tmp_path, capsys):
        out_path = tmp_path / "findings.jsonl"
        assert main(GOLDEN_ARGV + ["--jsonl", str(out_path)]) == 1
        capsys.readouterr()
        assert out_path.read_text() == GOLDEN.read_text()

    def test_golden_round_trips_through_the_api(self):
        findings = load_jsonl(GOLDEN.read_text())
        assert len(findings) == 8
        assert dump_jsonl(findings) == GOLDEN.read_text()
        for f in findings:
            assert f.severity == "error"
            assert f.witness["other_thread"] != f.thread
