"""Lint-pass detectors: deadlock, barriers, sync init, bounds, phases."""

from tests import racy_programs as rp

from repro.analysis import ConcurrencyChecker, Finding, dump_jsonl, load_jsonl


class TestDeadlockDiagnosis:
    def test_ssf_to_full_word_reports_deadlock(self):
        r = rp.run_deadlock_ssf_full()
        [f] = r.errors
        assert f.check == "deadlock"
        assert f.witness["set_full"] is True
        assert f.address is not None

    def test_drained_word_is_clean(self):
        assert rp.run_clean_ssf_after_drain().findings == []

    def test_sle_on_never_filled_word_is_sync_init(self):
        r = rp.run_sync_uninit_sle()
        [f] = r.errors
        assert f.check == "sync-init"


class TestBarrierChecks:
    def test_mta_mismatch(self):
        r = rp.run_barrier_mismatch_mta()
        [f] = r.errors
        assert f.check == "barrier-mismatch"
        assert f.witness["arrived"] == 1 and f.witness["need"] == 2

    def test_smp_mismatch(self):
        r = rp.run_barrier_mismatch_smp()
        [f] = r.errors
        assert f.check == "barrier-mismatch"
        assert f.witness["need"] == 2

    def test_unused_barrier_is_warning(self):
        r = rp.run_barrier_unused()
        assert r.errors == []
        [f] = r.warnings
        assert f.check == "barrier-unused"


class TestBoundsAndInit:
    def test_overrun_reports_bounds(self):
        r = rp.run_bounds_overrun()
        [f] = r.errors
        assert f.check == "bounds" and f.address == 4

    def test_in_bounds_clean(self):
        assert rp.run_clean_bounds().findings == []

    def test_fa_uninit_warning(self):
        r = rp.run_fa_uninit()
        assert r.errors == []
        [f] = r.warnings
        assert f.check == "fa-uninit"

    def test_phase_duplicate_warning(self):
        r = rp.run_phase_duplicate()
        [f] = r.warnings
        assert f.check == "phase-hygiene" and "loop" in f.message


class TestFindingRecords:
    def test_unknown_check_rejected(self):
        try:
            Finding(check="nope", severity="error", message="x")
        except ValueError as exc:
            assert "nope" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_jsonl_round_trip(self):
        r = rp.run_racy_store_store()
        text = dump_jsonl(r.findings)
        back = load_jsonl(text)
        assert [f.to_dict() for f in back] == [f.to_dict() for f in r.findings]

    def test_report_is_idempotent(self):
        check = ConcurrencyChecker()
        assert check.report() is check.report()

    def test_render_mentions_location(self):
        [f] = rp.run_bounds_overrun().errors
        line = f.render()
        assert "bounds" in line and "addr=4" in line
