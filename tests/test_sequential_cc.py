"""Tests for sequential connected-components baselines (repro.graphs.sequential_cc)."""

import numpy as np
import pytest

from repro.graphs.generate import (
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
    star_graph,
)
from repro.graphs.sequential_cc import cc_bfs, cc_union_find

from .conftest import nx_cc_labels

FAMILIES = [
    random_graph(300, 900, rng=0),
    mesh2d(12, 13),
    chain_graph(200),
    star_graph(150),
    cliques_graph(6, 8),
    forest_of_chains(5, 40, rng=1),
]


class TestUnionFind:
    @pytest.mark.parametrize("g", FAMILIES, ids=range(len(FAMILIES)))
    def test_matches_networkx(self, g):
        assert np.array_equal(cc_union_find(g).labels, nx_cc_labels(g))

    def test_component_count(self):
        g = forest_of_chains(7, 10, rng=2)
        assert cc_union_find(g).n_components == 7

    def test_chase_steps_measured(self):
        run = cc_union_find(chain_graph(100))
        assert run.stats["chase_steps"] >= 0
        assert run.stats["unions"] == 99

    def test_single_step_no_barriers(self):
        run = cc_union_find(random_graph(50, 100, rng=0))
        assert len(run.steps) == 1
        assert run.steps[0].barriers == 0
        assert run.steps[0].p == 1

    def test_isolated_vertices(self):
        g = random_graph(20, 0, rng=0)
        run = cc_union_find(g)
        assert run.n_components == 20


class TestBFS:
    @pytest.mark.parametrize("g", FAMILIES, ids=range(len(FAMILIES)))
    def test_matches_networkx(self, g):
        assert np.array_equal(cc_bfs(g).labels, nx_cc_labels(g))

    def test_frontier_rounds_equal_ecc_ish(self):
        run = cc_bfs(chain_graph(64))
        # BFS from vertex 0 on a path: 64 frontiers
        assert run.stats["frontier_rounds"] == 64

    def test_edge_gathers_counted(self):
        g = star_graph(10)
        run = cc_bfs(g)
        assert run.stats["edge_gathers"] == 2 * g.m  # each direction gathered once


class TestBaselinesAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_uf_and_bfs_identical(self, seed):
        g = random_graph(200, 350, rng=seed)
        assert np.array_equal(cc_union_find(g).labels, cc_bfs(g).labels)
