"""Tests for the SMP cycle engine (repro.sim.smp_engine)."""

import numpy as np
import pytest

from repro.core.smp_machine import SUN_E4500
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.sim import SMPEngine, isa


def run_single(gen, config=SUN_E4500):
    eng = SMPEngine(p=1, config=config)
    eng.attach(gen)
    return eng.run()


class TestCacheTiming:
    def test_l1_hit_after_miss(self):
        def prog():
            yield isa.load(0)  # cold miss → memory
            yield isa.load(1)  # same line → L1

        r = run_single(prog())
        c = SUN_E4500
        assert r.cycles >= c.mem_cycles
        assert r.cycles <= c.mem_cycles + c.l1_hit_cycles + 2

    def test_streamed_scan_faster_than_random(self, rng):
        # L2-resident working set larger than L1: repeated sequential
        # sweeps amortize one L2 access per line, repeated random access
        # pays an L2 access per word
        n = 8192
        passes = 3

        def scan(addr_passes):
            def prog():
                for addrs in addr_passes:
                    for a in addrs:
                        yield isa.load(int(a))

            return prog()

        seq = run_single(scan([np.arange(n)] * passes))
        rand = run_single(scan([rng.permutation(n) for _ in range(passes)]))
        assert rand.cycles > 1.4 * seq.cycles

    def test_cache_stats_reported(self):
        def prog():
            for a in range(64):
                yield isa.load(a)

        r = run_single(prog())
        assert 0.0 < r.detail["l1_hit_rate"][0] < 1.0


class TestStores:
    def test_store_does_not_stall(self):
        def loads():
            for i in range(64):
                yield isa.load(i * 1024)  # all misses

        def stores():
            for i in range(64):
                yield isa.store(i * 1024)

        rl = run_single(loads())
        rs = run_single(stores())
        assert rs.cycles < 0.25 * rl.cycles


class TestBus:
    def test_contention_slows_concurrent_missers(self):
        # stores retire in ~1 cycle of CPU time but their write-allocate
        # line fills occupy the shared bus; eight processors streaming
        # stores oversubscribe it badly while one does not
        def misser(base):
            def prog():
                for i in range(512):
                    yield isa.store(base + i * 1024)

            return prog()

        solo = SMPEngine(p=1)
        solo.attach(misser(0))
        t1 = solo.run().cycles

        p = 8
        eng = SMPEngine(p=p)
        for k in range(p):
            eng.attach(misser(k * 10_000_000))
        tp = eng.run().cycles
        assert tp > t1 * 1.5

    def test_bus_busy_cycles_accumulate(self):
        def prog():
            for i in range(16):
                yield isa.load(i * 1024)

        eng = SMPEngine(p=1)
        eng.attach(prog())
        r = eng.run()
        assert r.detail["bus_busy_cycles"] > 0


class TestBarriers:
    def test_release_after_last_arrival(self):
        def prog(work):
            yield isa.compute(work)
            yield isa.barrier("x")
            yield isa.compute(10)

        eng = SMPEngine(p=2)
        eng.attach(prog(10))
        eng.attach(prog(1000))
        r = eng.run()
        c = SUN_E4500
        expected_min = 1000 * c.cpi + c.barrier_cycles(2)
        assert r.cycles >= expected_min

    def test_mismatched_barrier_deadlocks(self):
        def arrives():
            yield isa.barrier("only-me")

        def skips():
            yield isa.compute(1)

        eng = SMPEngine(p=2)
        eng.attach(arrives())
        eng.attach(skips())
        with pytest.raises(DeadlockError):
            eng.run()


class TestFetchAdd:
    def test_work_queue_distributes_all_items(self):
        taken = []

        def worker(wid):
            while True:
                i = yield isa.fetch_add(5, 1)
                if i >= 50:
                    return
                taken.append((wid, i))
                yield isa.compute(3)

        eng = SMPEngine(p=4)
        eng.set_counter(5, 0)
        for w in range(4):
            eng.attach(worker(w))
        eng.run()
        assert sorted(i for _, i in taken) == list(range(50))
        # more than one processor actually got work
        assert len({w for w, _ in taken}) > 1


class TestErrors:
    def test_attach_limit(self):
        eng = SMPEngine(p=1)
        eng.attach(iter(()))
        with pytest.raises(ConfigurationError):
            eng.attach(iter(()))

    def test_run_requires_full_attachment(self):
        eng = SMPEngine(p=2)
        eng.attach(iter(()))
        with pytest.raises(ConfigurationError):
            eng.run()

    def test_unknown_opcode(self):
        def prog():
            yield ("??",)

        eng = SMPEngine(p=1)
        eng.attach(prog())
        with pytest.raises(SimulationError):
            eng.run()

    def test_p_bounds(self):
        with pytest.raises(ConfigurationError):
            SMPEngine(p=0)


class TestRunawayGuards:
    def test_smp_max_ops_guard(self):
        def forever():
            while True:
                yield isa.compute(1)

        eng = SMPEngine(p=1)
        eng.attach(forever())
        with pytest.raises(SimulationError):
            eng.run(max_ops=1000)
