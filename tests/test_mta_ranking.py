"""Tests for the MTA walk algorithm, Alg. 1 (repro.lists.mta_ranking)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.mta_ranking import mta_prefix, rank_mta
from repro.lists.prefix import ADD, MAX
from repro.lists.sequential import prefix_sequential


class TestRankingCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 11, 99, 2048])
    @pytest.mark.parametrize("make", [ordered_list, lambda n: random_list(n, 9)])
    def test_ranks_match_truth(self, n, make):
        nxt = make(n)
        run = rank_mta(nxt, p=2)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("nwalks", [1, 2, 10, 100, 5000])
    def test_independent_of_walk_count(self, nwalks):
        nxt = random_list(1000, 4)
        run = rank_mta(nxt, nwalks=nwalks)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_block_schedule_still_correct(self):
        nxt = random_list(700, 2)
        run = rank_mta(nxt, p=4, schedule="block")
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_generic_prefix(self, rng):
        nxt = random_list(400, rng)
        values = rng.integers(0, 1000, 400)
        run = mta_prefix(nxt, p=2, values=values, op=MAX)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, MAX))

    def test_add_with_negative_values(self, rng):
        nxt = random_list(400, rng)
        values = rng.integers(-100, 100, 400)
        run = mta_prefix(nxt, p=2, values=values, op=ADD)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, ADD))


class TestInstrumentation:
    def test_four_phases(self):
        run = rank_mta(random_list(500, 1), p=2)
        names = [s.name for s in run.steps]
        assert names == [
            "mta.1.mark-heads",
            "mta.2.walk-sublists",
            "mta.3.rank-walk-heads",
            "mta.4.retraverse",
        ]

    def test_default_walks_follow_paper_operating_point(self):
        # small lists: ~10 nodes per walk (the saturation floor)
        n = 3000
        run = rank_mta(random_list(n, 1), p=1)
        assert abs(run.stats["nwalks"] - n / 10) <= 2
        # large lists: the walk count is a fixed per-processor budget
        big = rank_mta(random_list(100_000, 1), p=2)
        assert big.stats["nwalks"] <= 2 * 400 + 2

    def test_wyllie_rounds_logarithmic(self):
        n = 20_000
        run = rank_mta(random_list(n, 1), p=1)
        w = run.stats["nwalks"]
        assert run.stats["wyllie_rounds"] <= math.ceil(math.log2(w)) + 1

    def test_dynamic_schedule_reports_hotspot(self):
        run = rank_mta(random_list(1000, 1), p=1, schedule="dynamic")
        walk_step = run.steps[1]
        assert walk_step.hotspot_ops == run.stats["nwalks"]

    def test_block_schedule_no_hotspot(self):
        run = rank_mta(random_list(1000, 1), p=1, schedule="block")
        assert run.steps[1].hotspot_ops == 0

    def test_parallelism_equals_walks(self):
        run = rank_mta(random_list(2000, 1), p=2, nwalks=50)
        w = run.stats["nwalks"]
        assert run.steps[1].parallelism == w
        assert run.steps[3].parallelism == w

    def test_total_walk_accesses_account_for_nodes(self):
        n = 3000
        run = rank_mta(random_list(n, 1), p=2)
        s2 = run.steps[1]
        reads = float(s2.contig.sum() + s2.noncontig.sum())
        # 2 reads per node plus the per-walk record writes counted separately
        assert reads == pytest.approx(2 * n)

    def test_traces_optional(self):
        run = rank_mta(random_list(300, 1), p=2, collect_traces=True)
        assert run.steps[1].traces is not None
        assert sum(len(t) for t in run.steps[1].traces) == 2 * 300


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_mta(np.empty(0, dtype=np.int64))

    def test_bad_p_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_mta(ordered_list(5), p=0)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_mta(ordered_list(5), schedule="nope")

    def test_values_shape_checked(self):
        with pytest.raises(ConfigurationError):
            mta_prefix(ordered_list(5), values=np.ones(3))
