"""Kernel-level checkpoint/restore: pause, serialize, resume, byte-identical.

The contract under test (docs/SIMULATION.md, "Checkpoint & resume"):
a recording kernel paused at any scheduling boundary, its snapshot
pushed through ``pickle`` (the process boundary), restored into a
*freshly built* engine and run to completion, must produce a
:class:`~repro.sim.SimReport` — and shared-array side effects, and the
hook event stream — byte-identical to the uninterrupted run.  On both
machines, on both execution tiers, at arbitrary boundaries (the
Hypothesis property below reuses the differential fuzzer's program
generator from :mod:`tests.test_sim_fuzz`).

Also covered here: the watchdog post-mortem artifact (resume an aborted
run with a larger budget), the on-disk artifact codec, and the full
stale-checkpoint rejection matrix — every mismatch must raise a
structured :class:`~repro.errors.CheckpointError` *before* anything is
restored.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, RunPaused, WatchdogExceeded
from repro.sim import MTAEngine, SMPEngine
from repro.sim.checkpoint import (
    CheckpointSession,
    CheckpointStore,
    load_checkpoint,
    read_header,
)
from repro.sim.isa import (
    barrier,
    compute,
    fetch_add,
    load,
    load_dep,
    phase,
    run_block,
    store,
    sync_load_consume,
    sync_store,
)
from tests.test_sim_fuzz import _fuzz_programs, _gen_of, _report_blob

# ---------------------------------------------------------------------------
# deterministic builders (module-level so the subprocess test can import them)
# ---------------------------------------------------------------------------


def build_mta(record=False, session=None):
    """A small MTA workload covering every stateful construct: counters,
    barriers, phases, full/empty sync, run_block chains, shared arrays."""
    eng = MTAEngine(p=2, record=record, session=session)
    arr = np.zeros(64, dtype=np.int64)

    def worker(wid):
        v = yield fetch_add(1000, 1)
        yield compute(3)
        for i in range(10):
            yield load(2000 + 8 * (v * 10 + i))
            arr[v * 10 + i] += i
        yield barrier("b0")
        yield phase(f"phase-{wid}")
        if wid == 0:
            yield sync_store(3000, 42)
        elif wid == 1:
            got = yield sync_load_consume(3000)
            arr[0] += got
        yield run_block([load_dep(4000), load_dep(4008), load_dep(4016)])
        yield store(5000 + wid * 8)

    eng.set_counter(1000, 0)
    eng.register_barrier("b0", 4)
    for wid in range(4):
        eng.spawn(worker(wid))
    return eng, arr


def build_smp(record=False, session=None):
    eng = SMPEngine(p=4, record=record, session=session)
    arr = np.zeros(64, dtype=np.int64)

    def prog(pid):
        v = yield fetch_add(100, 1)
        yield compute(5)
        for i in range(20):
            yield load(8 * (pid * 32 + i))
            arr[pid * 16 + i % 16] += 1
        yield barrier("b")
        yield phase(f"p{pid}")
        yield store(8 * pid)
        arr[pid] += v

    eng.set_counter(100, 0)
    for pid in range(4):
        eng.attach(prog(pid))
    return eng, arr


_BUILDERS = {"mta": build_mta, "smp": build_smp}


class _LogHook:
    """Phase-level hook recording the event stream (tier-independent:
    subscribes to no per-op event, so the vector tier stays legal)."""

    def __init__(self):
        self.events = []

    def on_run_start(self, name, p):
        self.events.append(("start", name, p))

    def on_phase(self, tid, label):
        self.events.append(("phase", tid, label))

    def on_barrier_release(self, bid, tids):
        self.events.append(("release", bid, tuple(tids)))

    def end_run(self, report):
        self.events.append(("end", report.name, report.cycles))


def _pause_state(eng, pause_at, name="test", **run_kw):
    """Run until the first boundary at/past ``pause_at``; return the
    snapshot, or None when the run finished before any boundary."""
    try:
        eng.run(name, checkpoint_every=pause_at, checkpoint_sink=lambda s: True, **run_kw)
    except RunPaused as exc:
        return exc.state
    return None


# ---------------------------------------------------------------------------
# round trips: both machines x both tiers x several boundaries
# ---------------------------------------------------------------------------


#: Pause boundaries per machine (the MTA run spans hundreds of cycles;
#: the SMP one is ~115 scheduling steps).
_PAUSES = {"mta": (1, 50, 200), "smp": (1, 20, 80)}


@pytest.mark.parametrize("tier", ["interpreted", "vector"])
@pytest.mark.parametrize("machine", sorted(_BUILDERS))
@pytest.mark.parametrize("which", [0, 1, 2])
def test_roundtrip_report_and_memory(machine, tier, which):
    pause_at = _PAUSES[machine][which]
    build = _BUILDERS[machine]
    eng0, arr0 = build()
    rep0 = eng0.run("test", tier=tier)

    eng1, _ = build(record=True)
    state = _pause_state(eng1, pause_at, tier=tier)
    assert state is not None, "workload finished before the pause boundary"

    # the process boundary: the snapshot must survive serialization
    blob = pickle.dumps(state)
    eng2, arr2 = build()
    eng2.resume(pickle.loads(blob))
    rep2 = eng2.run("IGNORED", tier=tier)  # resumed runs keep their name
    assert _report_blob(rep2) == _report_blob(rep0)
    assert np.array_equal(arr2, arr0)


@pytest.mark.parametrize("tier", ["interpreted", "vector"])
@pytest.mark.parametrize("machine", sorted(_BUILDERS))
def test_roundtrip_hook_event_stream(machine, tier):
    """Prefix (before the pause) + continuation (after resume) equals
    the uninterrupted event stream — ``on_run_start`` is not re-emitted
    and no boundary event is doubled or dropped."""
    build = _BUILDERS[machine]
    eng0, _ = build()
    whole = _LogHook()
    eng0.kernel.bus.add(whole)
    rep0 = eng0.run("test", tier=tier)

    eng1, _ = build(record=True)
    prefix = _LogHook()
    eng1.kernel.bus.add(prefix)
    state = _pause_state(eng1, 50, tier=tier)
    assert state is not None

    eng2, _ = build()
    tail = _LogHook()
    eng2.kernel.bus.add(tail)
    eng2.resume(pickle.loads(pickle.dumps(state)))
    rep2 = eng2.run("IGNORED", tier=tier)
    assert prefix.events + tail.events == whole.events
    assert rep2.name == rep0.name == "test"


# ---------------------------------------------------------------------------
# property: random programs, random boundaries (fuzz-generator reuse)
# ---------------------------------------------------------------------------


def _fuzz_engine(machine, seed, record=False):
    """Deterministic engine + matched fuzz programs for ``seed`` —
    identical construction on every call, which is exactly what restore
    relies on (the workload is rebuilt, not unpickled)."""
    rng = np.random.default_rng(seed)
    progs, with_barrier, pairs = _fuzz_programs(rng)
    if machine == "mta":
        eng = MTAEngine(
            p=int(rng.integers(1, 4)),
            streams_per_proc=16,
            mem_latency=int(rng.integers(1, 30)),
            lookahead=int(rng.integers(0, 4)),
            max_outstanding=int(rng.integers(1, 5)),
            record=record,
        )
    else:
        eng = SMPEngine(p=len(progs), record=record)
    for addr in range(8):
        eng.set_counter(addr, 0)
    if with_barrier:
        eng.register_barrier("bz", len(progs))
    for ops in progs:
        (eng.spawn if machine == "mta" else eng.attach)(_gen_of(ops))
    if machine == "mta":

        def producer(addr, value, delay):
            yield compute(delay)
            yield sync_store(addr, value)

        def consumer(addr, delay):
            yield compute(delay)
            v = yield sync_load_consume(addr)
            del v

        for addr, value, d1, d2 in pairs:
            eng.spawn(producer(addr, value, d1))
            eng.spawn(consumer(addr, d2))
    return eng


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    pause_at=st.integers(min_value=1, max_value=400),
    machine=st.sampled_from(["mta", "smp"]),
    tier=st.sampled_from(["interpreted", "vector"]),
)
def test_roundtrip_property_fuzzed_programs(seed, pause_at, machine, tier):
    rep0 = _fuzz_engine(machine, seed).run("fuzz", 10_000_000, tier=tier)
    state = _pause_state(
        _fuzz_engine(machine, seed, record=True),
        pause_at,
        name="fuzz",
        budget=10_000_000,
        tier=tier,
    )
    if state is None:
        return  # run shorter than the first boundary: nothing to resume
    eng2 = _fuzz_engine(machine, seed)
    eng2.resume(pickle.loads(pickle.dumps(state)))
    rep2 = eng2.run("IGNORED", 10_000_000, tier=tier)
    assert _report_blob(rep2) == _report_blob(rep0)


# ---------------------------------------------------------------------------
# restore in a genuinely fresh process
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine", sorted(_BUILDERS))
def test_roundtrip_fresh_process(machine, tmp_path):
    build = _BUILDERS[machine]
    eng0, arr0 = build()
    blob0 = _report_blob(eng0.run("test"))

    store = CheckpointStore(tmp_path)
    session = CheckpointSession(every=100, store=store, should_stop=lambda: True)
    eng1, _ = build(session=session)
    with pytest.raises(RunPaused):
        eng1.run("test")
    assert session.written, "pause must persist an artifact"
    artifact = session.written[-1]

    root = Path(__file__).resolve().parent.parent
    code = (
        "import json\n"
        "from repro.sim.checkpoint import CheckpointSession, load_checkpoint\n"
        f"from tests.test_checkpoint import {build.__name__} as build\n"
        "from tests.test_sim_fuzz import _report_blob\n"
        f"ck = load_checkpoint({str(artifact)!r})\n"
        "session = CheckpointSession(resume=ck)\n"
        "eng, arr = build(session=session)\n"
        "rep = eng.run('IGNORED')\n"
        "print(json.dumps({'blob': _report_blob(rep), 'arr': arr.tolist(),"
        " 'resumed': session.resumed_from}))\n"
    )
    env = dict(os.environ, PYTHONPATH=f"{root}{os.pathsep}{root / 'src'}")
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout)
    assert out["blob"] == blob0
    assert out["arr"] == arr0.tolist()
    assert out["resumed"] == load_checkpoint(artifact).cid


# ---------------------------------------------------------------------------
# watchdog post-mortem resume (satellite: resume with a larger budget)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine", sorted(_BUILDERS))
def test_watchdog_checkpoint_resumes_with_larger_budget(machine):
    build = _BUILDERS[machine]
    eng0, arr0 = build()
    rep0 = eng0.run("test")

    eng1, _ = build(record=True)
    with pytest.raises(WatchdogExceeded) as exc_info:
        eng1.run("test", budget=40)
    post_mortem = exc_info.value.checkpoint
    assert post_mortem is not None

    eng2, arr2 = build()
    eng2.resume(pickle.loads(pickle.dumps(post_mortem)))
    rep2 = eng2.run("IGNORED")
    assert _report_blob(rep2) == _report_blob(rep0)
    assert np.array_equal(arr2, arr0)


def test_watchdog_without_recording_has_no_checkpoint():
    eng, _ = build_smp()  # record=False: no resume log, no post-mortem
    with pytest.raises(WatchdogExceeded) as exc_info:
        eng.run("test", budget=40)
    assert exc_info.value.checkpoint is None


def test_watchdog_artifact_persisted_by_session(tmp_path):
    store = CheckpointStore(tmp_path)
    session = CheckpointSession(store=store)
    eng, _ = build_mta(session=session)
    with pytest.raises(WatchdogExceeded) as exc_info:
        eng.run("test", budget=40)
    path = exc_info.value.checkpoint_path
    assert path is not None and Path(path).is_file()

    resume = CheckpointSession(resume=load_checkpoint(path))
    eng2, arr2 = build_mta(session=resume)
    rep2 = eng2.run("IGNORED")
    eng0, arr0 = build_mta()
    assert _report_blob(rep2) == _report_blob(eng0.run("test"))
    assert np.array_equal(arr2, arr0)


# ---------------------------------------------------------------------------
# sessions spanning several runs
# ---------------------------------------------------------------------------


def _session_two_phase(session, names=("alpha", "beta")):
    e1, _ = build_smp(session=session)
    r1 = e1.run(names[0])
    e2, _ = build_smp(session=session)
    r2 = e2.run(names[1])
    return r1, r2


def test_session_replays_completed_runs(tmp_path):
    base1, base2 = _session_two_phase(CheckpointSession())

    store = CheckpointStore(tmp_path)
    session = CheckpointSession(every=25, store=store, job={"key": "k" * 64})
    _session_two_phase(session)
    newest = store.newest_for("k" * 64)
    header = read_header(newest)
    assert header["run_index"] == 1 and header["run_name"] == "beta"

    resume = CheckpointSession(resume=load_checkpoint(newest))
    got1, got2 = _session_two_phase(resume)
    assert resume.replayed_runs == 1  # run "alpha" came from the stored log
    assert resume.resumed_from is not None
    assert _report_blob(got1) == _report_blob(base1)
    assert _report_blob(got2) == _report_blob(base2)


def test_session_rejects_run_name_mismatch(tmp_path):
    store = CheckpointStore(tmp_path)
    session = CheckpointSession(every=25, store=store, job={"key": "k" * 64})
    _session_two_phase(session)

    resume = CheckpointSession(resume=load_checkpoint(store.newest_for("k" * 64)))
    eng, _ = build_smp(session=resume)
    with pytest.raises(CheckpointError, match="resume mismatch"):
        eng.run("WRONG-NAME")


def test_session_rejects_setup_mismatch(tmp_path):
    store = CheckpointStore(tmp_path)
    session = CheckpointSession(every=25, store=store, job={"key": "k" * 64})
    _session_two_phase(session)

    resume = CheckpointSession(resume=load_checkpoint(store.newest_for("k" * 64)))
    eng, _ = build_mta(session=resume)  # different workload entirely
    with pytest.raises(CheckpointError, match="setup"):
        eng.run("alpha")


def test_session_allows_one_run_per_kernel():
    session = CheckpointSession()
    eng, _ = build_smp(session=session)
    eng.run("alpha")
    with pytest.raises(CheckpointError, match="one run per kernel"):
        eng.run("beta")


# ---------------------------------------------------------------------------
# stale-artifact rejection: every mismatch fails closed
# ---------------------------------------------------------------------------


def _write_artifact(tmp_path) -> Path:
    store = CheckpointStore(tmp_path)
    session = CheckpointSession(every=100, store=store, should_stop=lambda: True)
    eng, _ = build_mta(session=session)
    with pytest.raises(RunPaused):
        eng.run("test")
    return session.written[-1]


def _tamper_header(path: Path, mutate) -> Path:
    raw = path.read_bytes()
    head, body = raw.split(b"\n", 1)
    header = json.loads(head)
    mutate(header)
    out = path.with_name("tampered.ckpt")
    out.write_bytes(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        + b"\n"
        + body
    )
    return out


def test_loads_cleanly_before_tampering(tmp_path):
    ck = load_checkpoint(_write_artifact(tmp_path))
    assert ck.state is not None and ck.runs == []
    assert ck.header["machine"] == "mta" and ck.header["p"] == 2


def test_rejects_changed_code_digest(tmp_path):
    path = _write_artifact(tmp_path)

    def mutate(h):
        h["code"]["repro.sim.kernel"] = "0" * 64

    with pytest.raises(CheckpointError, match="different code"):
        load_checkpoint(_tamper_header(path, mutate))


def test_rejects_state_version_mismatch(tmp_path):
    path = _write_artifact(tmp_path)
    with pytest.raises(CheckpointError, match="state version"):
        load_checkpoint(
            _tamper_header(path, lambda h: h.update(state_version=999_999))
        )


def test_rejects_unknown_container_format(tmp_path):
    path = _write_artifact(tmp_path)
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(_tamper_header(path, lambda h: h.update(format=999)))


def test_rejects_corrupt_payload(tmp_path):
    path = _write_artifact(tmp_path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-10])  # truncate the compressed payload
    with pytest.raises(CheckpointError, match="corrupt"):
        load_checkpoint(path)


def test_rejects_non_artifact_file(tmp_path):
    junk = tmp_path / "junk.ckpt"
    junk.write_bytes(b"not a checkpoint\nat all")
    with pytest.raises(CheckpointError):
        load_checkpoint(junk)
    with pytest.raises(CheckpointError):
        read_header(junk)
    wrong_magic = tmp_path / "magic.ckpt"
    wrong_magic.write_bytes(b'{"magic": "something-else"}\npayload')
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(wrong_magic)


def test_kernel_rejects_wrong_machine_and_setup(tmp_path):
    eng1, _ = build_mta(record=True)
    state = _pause_state(eng1, 50)
    assert state is not None

    eng_smp, _ = build_smp()
    with pytest.raises(CheckpointError, match="machine"):
        eng_smp.resume(state)

    other = MTAEngine(p=4)  # same machine kind, different configuration
    with pytest.raises(CheckpointError, match="p="):
        other.resume(state)

    # same machine and thread layout, but a different declared setup
    # (extra counter) — the setup digest must reject the restore
    variant, _ = build_mta()
    variant.set_counter(999, 7)
    with pytest.raises(CheckpointError, match="setup"):
        variant.resume(state)


# ---------------------------------------------------------------------------
# store mechanics
# ---------------------------------------------------------------------------


def test_store_resolve_and_rm(tmp_path):
    path = _write_artifact(tmp_path)
    store = CheckpointStore(tmp_path)
    cid = path.stem
    assert store.resolve(cid[:12]) == path
    assert store.resolve(str(path)) == path
    with pytest.raises(CheckpointError, match="no checkpoint"):
        store.resolve("ffff" * 16)
    assert store.rm(cid[:12]) == path
    assert not path.exists()


def test_store_newest_for_prefers_most_advanced(tmp_path):
    store = CheckpointStore(tmp_path)
    key = "j" * 64
    session = CheckpointSession(every=20, store=store, job={"key": key})
    eng, _ = build_smp(session=session)
    eng.run("test")
    assert len(session.written) >= 2
    newest = store.newest_for(key)
    best = max(read_header(p)["progress"].get("steps", 0) for p in session.written)
    assert read_header(newest)["progress"].get("steps", 0) == best
    assert store.newest_for("nope" * 16) is None
