"""Determinism regression: same seed + config ⇒ bit-identical results.

The cycle engines are meant to be fully deterministic — seeded NumPy
RNGs, insertion-ordered dicts, a deterministic event heap — so two runs
with identical inputs must agree on *everything*: cycle counts, issued
instructions, op counts, phase slices, contention counters, and the
serialized event trace byte for byte.  Any nondeterminism (set
iteration, id()-keyed dicts, float reassociation) shows up here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import random_graph
from repro.graphs.programs import simulate_mta_cc, simulate_smp_cc
from repro.lists import random_list
from repro.lists.programs import simulate_mta_list_ranking, simulate_smp_list_ranking
from repro.obs import Tracer, jsonl_dumps


def _run_rank_mta():
    nxt = random_list(400, 11)
    t = Tracer(level="op")
    sim = simulate_mta_list_ranking(nxt, p=2, streams_per_proc=10, tracer=t)
    return sim, t


def _run_rank_smp():
    nxt = random_list(400, 11)
    t = Tracer(level="op")
    sim = simulate_smp_list_ranking(nxt, p=2, rng=11, tracer=t)
    return sim, t


def _run_cc_mta():
    g = random_graph(200, 600, rng=11)
    t = Tracer(level="op")
    sim = simulate_mta_cc(g, p=2, streams_per_proc=10, tracer=t)
    return sim, t


def _run_cc_smp():
    g = random_graph(200, 600, rng=11)
    t = Tracer(level="op")
    sim = simulate_smp_cc(g, p=2, tracer=t)
    return sim, t


RUNNERS = {
    "rank-mta": _run_rank_mta,
    "rank-smp": _run_rank_smp,
    "cc-mta": _run_cc_mta,
    "cc-smp": _run_cc_smp,
}


def _normalize_detail(detail):
    out = {}
    for k, v in detail.items():
        if isinstance(v, np.ndarray):
            v = v.tolist()
        out[k] = v
    return out


@pytest.mark.parametrize("workload", sorted(RUNNERS))
class TestBitIdentical:
    def test_reports_identical(self, workload):
        sim1, _ = RUNNERS[workload]()
        sim2, _ = RUNNERS[workload]()
        r1, r2 = sim1.report, sim2.report
        assert r1.cycles == r2.cycles
        assert np.array_equal(r1.issued, r2.issued)
        assert r1.op_counts == r2.op_counts
        assert _normalize_detail(r1.detail) == _normalize_detail(r2.detail)
        assert r1.phases == r2.phases

    def test_phase_reports_identical(self, workload):
        sim1, _ = RUNNERS[workload]()
        sim2, _ = RUNNERS[workload]()
        assert len(sim1.phase_reports) == len(sim2.phase_reports)
        for a, b in zip(sim1.phase_reports, sim2.phase_reports, strict=False):
            assert a.name == b.name
            assert a.cycles == b.cycles
            assert np.array_equal(a.issued, b.issued)
            assert _normalize_detail(a.detail) == _normalize_detail(b.detail)

    def test_traces_byte_identical(self, workload):
        _, t1 = RUNNERS[workload]()
        _, t2 = RUNNERS[workload]()
        assert jsonl_dumps(t1.events) == jsonl_dumps(t2.events)

    def test_outputs_identical(self, workload):
        sim1, _ = RUNNERS[workload]()
        sim2, _ = RUNNERS[workload]()
        out1 = sim1.ranks if hasattr(sim1, "ranks") else sim1.labels
        out2 = sim2.ranks if hasattr(sim2, "ranks") else sim2.labels
        assert np.array_equal(out1, out2)


def test_different_seeds_differ():
    """Sanity check that the determinism tests have power: a different
    seed produces a different trace."""
    nxt_a = random_list(400, 11)
    nxt_b = random_list(400, 12)
    t_a, t_b = Tracer(level="op"), Tracer(level="op")
    simulate_mta_list_ranking(nxt_a, p=2, streams_per_proc=10, tracer=t_a)
    simulate_mta_list_ranking(nxt_b, p=2, streams_per_proc=10, tracer=t_b)
    assert jsonl_dumps(t_a.events) != jsonl_dumps(t_b.events)


def test_summary_deterministic():
    sim1, _ = _run_rank_mta()
    sim2, _ = _run_rank_mta()
    assert sim1.summary.to_dict() == sim2.summary.to_dict()
