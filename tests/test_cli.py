"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["rank", "--n", "100", "--p", "2"],
            ["cc", "--n", "64", "--edge-factor", "3"],
            ["fig1", "--max-n", "4096"],
            ["fig2", "--n", "1024"],
            ["table1", "--nodes-per-proc", "500"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Sun-E4500" in out and "Cray-MTA2" in out

    def test_rank_both_machines(self, capsys):
        assert main(["rank", "--n", "4096", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "SMP Helman-JaJa" in out
        assert "MTA Alg.1 walks" in out

    def test_rank_single_machine(self, capsys):
        assert main(["rank", "--n", "2048", "--machine", "mta"]) == 0
        out = capsys.readouterr().out
        assert "MTA" in out and "Helman-JaJa" not in out

    def test_rank_ordered(self, capsys):
        assert main(["rank", "--n", "2048", "--list", "ordered"]) == 0
        assert "ordered list" in capsys.readouterr().out

    @pytest.mark.parametrize("graph", ["random", "rmat", "mesh"])
    def test_cc_graph_families(self, graph, capsys):
        assert main(["cc", "--n", "1024", "--edge-factor", "4", "--graph", graph]) == 0
        out = capsys.readouterr().out
        assert "component" in out
        assert "Shiloach-Vishkin" in out

    def test_fig1_plots(self, capsys):
        assert main(["fig1", "--max-n", "8192"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out
        assert "smp-rand" in out

    def test_fig2_table(self, capsys):
        assert main(["fig2", "--n", "4096"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_table1(self, capsys):
        assert main(["table1", "--nodes-per-proc", "500"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out

    def test_workload_error_exit_code(self, capsys):
        # p = 0 is a configuration error surfaced as exit code 2
        assert main(["rank", "--n", "16", "--p", "0"]) == 2
        assert "error" in capsys.readouterr().err
