"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["rank", "--n", "100", "--p", "2"],
            ["cc", "--n", "64", "--edge-factor", "3"],
            ["fig1", "--max-n", "4096"],
            ["fig2", "--n", "1024"],
            ["table1", "--nodes-per-proc", "500"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Sun-E4500" in out and "Cray-MTA2" in out

    def test_rank_both_machines(self, capsys):
        assert main(["rank", "--n", "4096", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "SMP Helman-JaJa" in out
        assert "MTA Alg.1 walks" in out

    def test_rank_single_machine(self, capsys):
        assert main(["rank", "--n", "2048", "--machine", "mta"]) == 0
        out = capsys.readouterr().out
        assert "MTA" in out and "Helman-JaJa" not in out

    def test_rank_ordered(self, capsys):
        assert main(["rank", "--n", "2048", "--list", "ordered"]) == 0
        assert "ordered list" in capsys.readouterr().out

    @pytest.mark.parametrize("graph", ["random", "rmat", "mesh"])
    def test_cc_graph_families(self, graph, capsys):
        assert main(["cc", "--n", "1024", "--edge-factor", "4", "--graph", graph]) == 0
        out = capsys.readouterr().out
        assert "component" in out
        assert "Shiloach-Vishkin" in out

    def test_fig1_plots(self, capsys):
        assert main(["fig1", "--max-n", "8192"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out
        assert "smp-rand" in out

    def test_fig2_table(self, capsys):
        assert main(["fig2", "--n", "4096"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_table1(self, capsys):
        assert main(["table1", "--nodes-per-proc", "500"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out

    def test_workload_error_exit_code(self, capsys):
        # p = 0 is a configuration error surfaced as exit code 2
        assert main(["rank", "--n", "16", "--p", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestTrace:
    def test_trace_parses(self):
        args = build_parser().parse_args(
            ["trace", "rank-mta", "--n", "256", "--p", "2", "--level", "op"]
        )
        assert args.command == "trace" and args.workload == "rank-mta"

    def test_trace_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "sort"])

    @pytest.mark.parametrize("workload", ["rank-mta", "rank-smp", "cc-mta", "cc-smp"])
    def test_trace_chrome_output(self, workload, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert (
            main(
                [
                    "trace", workload,
                    "--n", "256", "--p", "2",
                    "--streams", "8",
                    "--out", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "utilization" in text and "Perfetto" in text

        import json

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        # Perfetto-loadable: every event carries the required keys
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert "dur" in e
        # per-phase cycle totals sum to the engine's total cycles
        spans = [e for e in events if e.get("cat") == "phase"]
        total_dur = sum(e["dur"] for e in spans)
        end = max(e["ts"] + e["dur"] for e in spans)
        assert total_dur == pytest.approx(end)

    def test_trace_jsonl_output(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "trace", "rank-smp",
                    "--n", "256", "--p", "2",
                    "--format", "jsonl", "--level", "op",
                    "--out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.obs import read_jsonl

        events = read_jsonl(out)
        assert any(e.ph == "X" for e in events)

    def test_trace_default_output_name(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "rank-smp", "--n", "128", "--p", "2"]) == 0
        capsys.readouterr()
        assert (tmp_path / "trace-rank-smp.json").exists()


class TestBackendsCommand:
    def test_lists_all_five(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in (
            "smp-model", "mta-model", "cluster-model", "smp-engine", "mta-engine"
        ):
            assert name in out

    def test_json_output(self, capsys):
        import json

        assert main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["name"] for r in rows} >= {
            "smp-model", "mta-model", "cluster-model", "smp-engine", "mta-engine"
        }
        assert all({"name", "level", "kinds", "description"} <= set(r) for r in rows)


class TestRunCommand:
    def test_run_rank_on_model(self, capsys):
        assert main(
            ["run", "--workload", "rank", "--backend", "smp-model",
             "--n", "512", "--p", "2", "--param", "list=ordered", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "rank on smp-model (fresh)" in out
        assert "utilization" in out

    def test_run_on_engine_with_opts(self, capsys):
        assert main(
            ["run", "--workload", "rank", "--backend", "mta-engine",
             "--n", "128", "--p", "2",
             "--opt", "streams_per_proc=8", "--opt", "nodes_per_walk=4",
             "--no-cache"]
        ) == 0
        assert "mta-engine" in capsys.readouterr().out

    def test_run_json_record(self, capsys):
        import json

        assert main(
            ["run", "--workload", "cc", "--backend", "mta-model",
             "--n", "128", "--param", "m=512", "--param", "graph=random",
             "--json", "--no-cache"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "mta-model"
        assert record["summary"]["detail"]["algorithm"] == "sv-mta"

    def test_run_cached_second_time(self, tmp_path, capsys):
        argv = ["run", "--workload", "rank", "--backend", "smp-model",
                "--n", "256", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "(fresh)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_run_unknown_backend_is_config_error(self, capsys):
        assert main(
            ["run", "--workload", "rank", "--backend", "nope", "--n", "64",
             "--no-cache"]
        ) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_bad_kv_pair_is_config_error(self, capsys):
        assert main(
            ["run", "--workload", "rank", "--backend", "smp-model",
             "--n", "64", "--param", "listordered", "--no-cache"]
        ) == 2
        assert "expected K=V" in capsys.readouterr().err


class TestSweepCommand:
    def test_tiny_sweep_runs_and_reruns_byte_identical(self, tmp_path, capsys):
        argv = ["sweep", "--spec", "fig1-tiny", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        # stdout is byte-identical; only the stderr cache stats differ
        assert first.out == second.out
        assert "0/" in first.err.split("cache:")[1]  # cold: no hits
        assert "hits" in second.err

    def test_workers_flag_matches_serial(self, tmp_path, capsys):
        assert main(
            ["sweep", "--spec", "fig1-tiny", "--workers", "1", "--no-cache"]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            ["sweep", "--spec", "fig1-tiny", "--workers", "2", "--no-cache"]
        ) == 0
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_jsonl_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "rows.jsonl"
        assert main(
            ["sweep", "--spec", "fig1-tiny", "--no-cache", "--jsonl", str(out)]
        ) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert {"workload", "backend", "summary"} <= set(record)

    def test_unknown_spec_is_config_error(self, capsys):
        assert main(["sweep", "--spec", "fig9", "--no-cache"]) == 2
        assert "unknown sweep" in capsys.readouterr().err


class TestFlagValidation:
    """Count-valued flags reject values < 1 with a structured CLI error."""

    def test_run_shards_must_be_positive(self, capsys):
        assert main(
            ["run", "--workload", "cc", "--backend", "mta-engine",
             "--n", "64", "--shards", "0", "--no-cache"]
        ) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_sweep_workers_must_be_positive(self, capsys):
        assert main(
            ["sweep", "--spec", "fig1-tiny", "--workers", "0", "--no-cache"]
        ) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_run_checkpoint_every_must_be_positive(self, capsys):
        assert main(
            ["run", "--workload", "rank", "--backend", "mta-engine",
             "--n", "64", "--checkpoint-every", "0", "--no-cache"]
        ) == 2
        assert "--checkpoint-every must be >= 1" in capsys.readouterr().err


class TestShardedRun:
    def test_backends_table_shows_shard_capability(self, capsys):
        import json

        assert main(["backends", "--json"]) == 0
        rows = {r["name"]: r for r in json.loads(capsys.readouterr().out)}
        assert rows["mta-engine"]["shardable"]
        assert rows["mta-next-engine"]["shardable"]
        assert not rows["smp-engine"]["shardable"]
        assert main(["backends"]) == 0
        assert "shard" in capsys.readouterr().out

    def test_run_cc_sharded(self, capsys):
        import json

        assert main(
            ["run", "--workload", "cc", "--backend", "mta-engine",
             "--n", "64", "--p", "4", "--param", "m=192",
             "--shards", "2", "--opt", "shard_executor=inline",
             "--opt", "streams_per_proc=8", "--opt", "edges_per_chunk=8",
             "--json", "--no-cache"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        detail = record["summary"]["detail"]
        assert detail["shards"] == 2
        assert detail["shard"]["msgs_sent"] > 0
        assert record["workload"]["options"]["shards"] == 2
