"""Public API surface and error-hierarchy tests."""

import dataclasses
import inspect

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    WorkloadError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, WorkloadError, SimulationError, DeadlockError):
            assert issubclass(exc, ReproError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            repro.SMPMachine(p=0)


class TestPublicAPI:
    def test_top_level_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_exist(self):
        for pkg in (repro.core, repro.arch, repro.sim, repro.lists, repro.graphs,
                    repro.trees, repro.workloads):
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"

    def test_public_callables_documented(self):
        """Every public function/class in every subpackage has a docstring."""
        undocumented = []
        for pkg in (repro.core, repro.arch, repro.sim, repro.lists, repro.graphs,
                    repro.trees):
            for name in pkg.__all__:
                obj = getattr(pkg, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{pkg.__name__}.{name}")
        assert not undocumented, undocumented

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_machine_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            repro.SUN_E4500.clock_hz = 1.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            repro.CRAY_MTA2.clock_hz = 1.0

    def test_quickstart_from_docstring_runs(self):
        nxt = repro.lists.random_list(1 << 12, rng=0)
        run = repro.lists.rank_helman_jaja(nxt, p=8)
        smp = repro.core.SMPMachine(p=8)
        assert smp.run(run.steps).seconds > 0


class TestWorkloadSpecs:
    def test_default_specs_consistent(self):
        from repro.workloads import FIG1_SPEC, FIG2_SPEC, TABLE1_SPEC

        assert FIG1_SPEC.procs == (1, 2, 4, 8)
        assert FIG2_SPEC.edge_counts == tuple(k * FIG2_SPEC.n for k in (4, 8, 12, 16, 20))
        assert TABLE1_SPEC.procs == (1, 4, 8)
        assert set(TABLE1_SPEC.paper_cc) == {1, 4, 8}

    def test_paper_scale_builders(self):
        from repro.workloads import paper_scale_fig1, paper_scale_fig2

        M = 1 << 20
        assert max(paper_scale_fig1().sizes) == 20 * M
        assert paper_scale_fig2().n == M
