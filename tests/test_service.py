"""End-to-end tests for the experiment service (repro.service).

Each test runs a real :class:`ExperimentService` — sockets, HTTP, and
all — inside a dedicated thread + event loop, and talks to it through
the stdlib :class:`ServiceClient`, exactly as ``repro submit`` does.

To make coalescing and admission races deterministic, executions can
be held at a *gate*: ``_execute_payload`` is patched to block until
the test opens a :class:`threading.Event`, so "in flight" lasts
exactly as long as the test needs it to.
"""

import asyncio
import json
import threading

import pytest

import repro.core.runner as runner_mod
from repro.core.runner import run_jobs, write_jsonl
from repro.service import ExperimentService, ServiceClient, ServiceError
from repro.workloads import jobs_for


class Harness:
    """An ExperimentService on its own thread + event loop."""

    def __init__(self, **service_kwargs):
        self.loop = asyncio.new_event_loop()
        self.service_kwargs = service_kwargs
        self.service: ExperimentService | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.service = ExperimentService(**self.service_kwargs)
        self.port = self.loop.run_until_complete(self.service.start("127.0.0.1", 0))
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> "Harness":
        self._thread.start()
        assert self._ready.wait(10), "service failed to start"
        return self

    def stop(self, drain: bool = True) -> None:
        if self.service is not None:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(drain=drain), self.loop
            ).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()

    def client(self, **kw) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kw)

    def on_loop(self, fn):
        """Run ``fn()`` on the service's event loop and return its value."""
        done = threading.Event()
        box = {}

        def call():
            box["value"] = fn()
            done.set()

        self.loop.call_soon_threadsafe(call)
        assert done.wait(10)
        return box["value"]


@pytest.fixture
def harness(tmp_path):
    made = []

    def make(**kw):
        kw.setdefault("cache", str(tmp_path / "cache"))
        kw.setdefault("job_workers", 0)
        h = Harness(**kw).start()
        made.append(h)
        return h

    yield make
    for h in made:
        h.stop()


@pytest.fixture
def gate(monkeypatch):
    """Hold every execution until the test opens the gate."""
    opened = threading.Event()
    calls = []
    real = runner_mod._execute_payload

    def gated(payload):
        calls.append(payload)
        if not opened.wait(timeout=60):  # pragma: no cover - hang guard
            raise RuntimeError("gate never opened")
        return real(payload)

    monkeypatch.setattr(runner_mod, "_execute_payload", gated)
    yield opened, calls
    opened.set()


def rank_body(n=512, seed=0, **extra):
    body = {
        "workload": {
            "kind": "rank",
            "p": 2,
            "seed": seed,
            "params": {"n": n, "list": "random"},
        },
        "backend": "smp-model",
    }
    body.update(extra)
    return body


def wait_for(predicate, timeout=10.0, poll=0.02):
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition never became true")
        time.sleep(poll)


class TestBasics:
    def test_health_and_unknown_routes(self, harness):
        h = harness()
        c = h.client()
        assert c.wait_until_up()["status"] == "ok"
        with pytest.raises(ServiceError) as exc:
            c._request("GET", "/v1/nope")
        assert exc.value.code == "not_found" and exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            c._request("PUT", "/v1/jobs")
        assert exc.value.code == "not_found"

    def test_submit_run_fetch(self, harness):
        h = harness()
        c = h.client()
        view = c.submit(rank_body())
        assert view["state"] == "queued" and view["id"].startswith("j-")
        done = c.wait(view["id"], timeout=30)
        assert done["state"] == "done"
        assert done["result"] == {"jobs": 1, "jobs_cached": 0, "jobs_fresh": 1}
        record = json.loads(done["results_jsonl"])
        assert record["backend"] == "smp-model"
        assert record["summary"]["cycles"] > 0
        listed = c.jobs()["jobs"]
        assert [j["id"] for j in listed] == [view["id"]]

    def test_unknown_job_is_404(self, harness):
        c = harness().client()
        with pytest.raises(ServiceError) as exc:
            c.job("j-999999")
        assert exc.value.code == "not_found"

    def test_malformed_body_is_structured_400(self, harness):
        c = harness().client()
        with pytest.raises(ServiceError) as exc:
            c.submit({"spec": "no-such-sweep"})
        assert exc.value.code == "bad_request" and exc.value.status == 400

    def test_metrics_shape(self, harness):
        c = harness().client()
        c.wait(c.submit(rank_body())["id"], timeout=30)
        m = c.metrics()
        for key in ("uptime_s", "queue_depth", "in_flight", "draining",
                    "counters", "latency"):
            assert key in m
        assert m["counters"]["completed"] == 1
        for key in ("count", "p50_s", "p95_s"):
            assert key in m["latency"]
        assert m["latency"]["count"] == 1


class TestCoalescing:
    def test_concurrent_identical_submissions_execute_once(self, harness, gate):
        """The tentpole acceptance gate: N concurrent identical
        submissions → one execution, byte-identical results for all."""
        opened, calls = gate
        h = harness(dispatchers=2, queue_limit=8)
        c = h.client()

        leader = c.submit(rank_body(n=1024))
        wait_for(lambda: c.job(leader["id"])["state"] == "running")

        views, errors = [], []

        def submit_one():
            try:
                views.append(c.submit(rank_body(n=1024)))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submit_one) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert all(v["coalesced_with"] == leader["id"] for v in views)

        opened.set()
        finals = [c.wait(v["id"], timeout=30) for v in [leader] + views]
        assert all(f["state"] == "done" for f in finals)
        blobs = {f["results_jsonl"] for f in finals}
        assert len(blobs) == 1  # byte-identical for every submitter

        m = c.metrics()
        assert m["counters"]["executions"] == 1
        assert m["counters"]["coalesce_hits"] == 3
        assert len(calls) == 1  # the kernel really ran once

    def test_warm_cache_after_completion(self, harness):
        h = harness()
        c = h.client()
        first = c.wait(c.submit(rank_body())["id"], timeout=30)
        second = c.wait(c.submit(rank_body())["id"], timeout=30)
        assert second["result"]["jobs_cached"] == 1
        assert second["result"]["jobs_fresh"] == 0
        assert second["results_jsonl"] == first["results_jsonl"]
        m = c.metrics()
        assert m["counters"]["executions"] == 2  # two executions...
        assert m["counters"]["cache_hits"] == 1  # ...but one hit the cache

    def test_different_work_does_not_coalesce(self, harness, gate):
        opened, _ = gate
        h = harness(dispatchers=2, queue_limit=8)
        c = h.client()
        a = c.submit(rank_body(seed=0))
        b = c.submit(rank_body(seed=1))
        assert b["coalesced_with"] is None
        opened.set()
        assert c.wait(a["id"], timeout=30)["state"] == "done"
        assert c.wait(b["id"], timeout=30)["state"] == "done"
        assert c.metrics()["counters"]["executions"] == 2


class TestAdmissionControl:
    def test_queue_full_is_structured_rejection(self, harness, gate):
        opened, _ = gate
        h = harness(dispatchers=1, queue_limit=1)
        c = h.client()

        running = c.submit(rank_body(seed=0))
        wait_for(lambda: c.job(running["id"])["state"] == "running")
        queued = c.submit(rank_body(seed=1))

        with pytest.raises(ServiceError) as exc:
            c.submit(rank_body(seed=2))
        assert exc.value.code == "queue_full"
        assert exc.value.status == 429

        # identical work still coalesces even with the queue full
        follower = c.submit(rank_body(seed=1))
        assert follower["coalesced_with"] == queued["id"]

        opened.set()
        for v in (running, queued, follower):
            assert c.wait(v["id"], timeout=30)["state"] == "done"
        m = c.metrics()
        assert m["counters"]["rejected_queue_full"] == 1
        assert m["counters"]["coalesce_hits"] == 1

    def test_priority_orders_the_backlog(self, harness, gate):
        opened, calls = gate
        h = harness(dispatchers=1, queue_limit=8)
        c = h.client()
        blocker = c.submit(rank_body(seed=0))
        wait_for(lambda: c.job(blocker["id"])["state"] == "running")
        low = c.submit(rank_body(seed=1, priority=0))
        high = c.submit(rank_body(seed=2, priority=10))
        opened.set()
        for v in (blocker, low, high):
            c.wait(v["id"], timeout=30)
        # execution order: blocker first, then high before low
        seeds = [p["workload"]["seed"] for p in calls]
        assert seeds.index(2) < seeds.index(1)


class TestCancellation:
    def batch(self, seeds=(0, 1, 2)):
        return {"jobs": [rank_body(seed=s) for s in seeds]}

    def test_cancel_queued_job(self, harness, gate):
        opened, _ = gate
        h = harness(dispatchers=1, queue_limit=4)
        c = h.client()
        running = c.submit(rank_body(seed=0))
        wait_for(lambda: c.job(running["id"])["state"] == "running")
        queued = c.submit(rank_body(seed=1))
        view = c.cancel(queued["id"])
        assert view["state"] == "cancelled"
        assert view["error"]["code"] == "cancelled"
        opened.set()
        assert c.wait(running["id"], timeout=30)["state"] == "done"
        assert c.metrics()["counters"]["cancelled"] == 1

    def test_cancel_running_job_unwinds_cleanly(self, harness, gate):
        opened, calls = gate
        h = harness(dispatchers=1, queue_limit=4)
        c = h.client()
        view = c.submit(self.batch())
        wait_for(lambda: len(calls) == 1)  # first of three jobs at the gate
        cancelled = c.cancel(view["id"])
        assert cancelled["cancel_requested"]
        opened.set()  # job 1 finishes; the runner then sees the cancel
        final = c.wait(view["id"], timeout=30)
        assert final["state"] == "cancelled"
        assert final["error"]["code"] == "cancelled"
        assert len(calls) == 1  # jobs 2 and 3 never started

    def test_cancel_follower_leaves_leader_alone(self, harness, gate):
        opened, _ = gate
        h = harness(dispatchers=1, queue_limit=4)
        c = h.client()
        leader = c.submit(rank_body())
        wait_for(lambda: c.job(leader["id"])["state"] == "running")
        follower = c.submit(rank_body())
        assert follower["coalesced_with"] == leader["id"]
        assert c.cancel(follower["id"])["cancel_requested"]
        wait_for(lambda: c.job(follower["id"])["state"] == "cancelled")
        opened.set()
        assert c.wait(leader["id"], timeout=30)["state"] == "done"

    def test_cancel_leader_cancels_followers(self, harness, gate):
        opened, calls = gate
        h = harness(dispatchers=1, queue_limit=4)
        c = h.client()
        leader = c.submit(self.batch())
        wait_for(lambda: len(calls) == 1)
        follower = c.submit(self.batch())
        assert follower["coalesced_with"] == leader["id"]
        c.cancel(leader["id"])
        opened.set()
        assert c.wait(leader["id"], timeout=30)["state"] == "cancelled"
        assert c.wait(follower["id"], timeout=30)["state"] == "cancelled"

    def test_cancel_is_idempotent(self, harness):
        c = harness().client()
        done = c.wait(c.submit(rank_body())["id"], timeout=30)
        again = c.cancel(done["id"])
        assert again["state"] == "done"  # terminal states never regress


class TestTimeouts:
    def test_per_submission_timeout_fails_structured(self, harness, gate):
        opened, calls = gate
        h = harness(dispatchers=1, queue_limit=4)
        c = h.client()
        view = c.submit({**TestCancellation().batch(), "timeout_s": 0.3})
        final = c.wait(view["id"], timeout=30)
        assert final["state"] == "failed"
        assert final["error"]["code"] == "timeout"
        assert c.metrics()["counters"]["timeouts"] == 1
        opened.set()  # release the stuck executor thread


class TestDrain:
    def test_draining_rejects_submissions(self, harness):
        h = harness()
        c = h.client()
        h.on_loop(lambda: setattr(h.service, "_draining", True))
        with pytest.raises(ServiceError) as exc:
            c.submit(rank_body())
        assert exc.value.code == "shutting_down" and exc.value.status == 503

    def test_graceful_stop_finishes_queued_work(self, tmp_path):
        h = Harness(cache=str(tmp_path / "cache"), job_workers=0).start()
        c = h.client()
        views = [c.submit(rank_body(seed=s)) for s in range(3)]
        h.stop(drain=True)  # returns only after the backlog drains
        svc = h.service
        assert all(svc._jobs[v["id"]].state == "done" for v in views)


class TestDeterminismThroughService:
    """The runner's byte-determinism guarantees survive the service path."""

    def test_sweep_via_service_matches_direct_runner(self, harness):
        h = harness(dispatchers=2)
        c = h.client()
        final = c.wait(c.submit({"spec": "fig2-tiny"})["id"], timeout=120)
        assert final["state"] == "done"
        direct = write_jsonl(run_jobs(jobs_for("fig2-tiny"), cache=False))
        assert final["results_jsonl"] == direct

    def test_engine_workload_via_service_matches_direct(self, harness):
        body = {
            "workload": {
                "kind": "rank",
                "p": 2,
                "seed": 7,
                "params": {"n": 512, "list": "random"},
            },
            "backend": "mta-engine",
            "backend_options": {},
        }
        c = harness().client()
        cold = c.wait(c.submit(body)["id"], timeout=60)
        warm = c.wait(c.submit(body)["id"], timeout=60)
        from repro.backends import Workload
        from repro.core.runner import Job

        direct = write_jsonl(
            run_jobs(
                [Job(Workload.from_dict(body["workload"]), "mta-engine")],
                cache=False,
            )
        )
        assert cold["results_jsonl"] == direct
        assert warm["results_jsonl"] == direct
        assert warm["result"]["jobs_cached"] == 1


class TestCliSubmit:
    def test_submit_waits_and_reports(self, harness, capsys):
        from repro.cli import main

        h = harness()
        argv = ["submit", "--port", str(h.port), "--workload", "rank",
                "--backend", "smp-model", "--n", "512", "--p", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "done" in out and "1 fresh" in out
        assert main(argv) == 0  # warm rerun hits the cache
        assert "cached" in capsys.readouterr().out

    def test_submit_spec_json(self, harness, capsys):
        from repro.cli import main

        h = harness()
        assert main(
            ["submit", "--port", str(h.port), "--spec", "fig1-tiny", "--json"]
        ) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["state"] == "done"
        assert view["submission"]["spec"] == "fig1-tiny"

    def test_submit_no_wait(self, harness, capsys):
        from repro.cli import main

        h = harness()
        assert main(
            ["submit", "--port", str(h.port), "--workload", "rank",
             "--backend", "smp-model", "--n", "256", "--no-wait"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("j-")

    def test_submit_requires_exactly_one_form(self, capsys):
        from repro.cli import main

        assert main(["submit", "--spec", "fig1-tiny", "--workload", "rank"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_submit_unreachable_server_is_error(self, capsys):
        from repro.cli import main

        # nothing listens on this port
        assert main(
            ["submit", "--port", "1", "--workload", "rank",
             "--backend", "smp-model"]
        ) == 2
        assert "failed" in capsys.readouterr().err


class TestShardMetrics:
    """Shard-runtime counters fold into the service metrics snapshot."""

    def test_record_shard_traffic(self):
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        m.record_shard_traffic(None)  # unsharded results are no-ops
        m.record_shard_traffic({})
        m.record_shard_traffic(
            {"rounds": 7, "msgs_routed": 120, "checkpoints": 1})
        m.record_shard_traffic(
            {"rounds": 3, "msgs_routed": 10, "checkpoints": 0})
        counters = m.snapshot(
            queue_depth=0, in_flight=0, jobs_tracked=0, draining=False
        )["counters"]
        assert counters["shard_runs"] == 2
        assert counters["shard_rounds"] == 10
        assert counters["shard_msgs_routed"] == 130
        assert counters["shard_checkpoints"] == 1
