"""Integration tests: the paper's headline comparative shapes.

These run the full pipeline (workload → instrumented algorithm →
machine model) at reduced scale and assert the qualitative results the
paper reports.  Bounds are deliberately loose — the claims are about
*shape* (who wins, roughly by how much, how things scale), not exact
constants.
"""

import pytest

from repro.core import MTAMachine, SMPMachine, scaling_exponent, speedup
from repro.graphs.generate import random_graph
from repro.graphs.sequential_cc import cc_union_find
from repro.graphs.sv_mta import sv_mta
from repro.graphs.sv_smp import sv_smp
from repro.lists.generate import ordered_list, random_list
from repro.lists.helman_jaja import rank_helman_jaja
from repro.lists.mta_ranking import rank_mta
from repro.lists.sequential import rank_sequential

# 1M nodes: large enough that every working set clearly exceeds the 4 MB
# L2 (at 256K the sequential baseline's 4 MB working set sits exactly on
# the cache boundary and the comparison becomes a cliff artifact)
N_LIST = 1 << 20


@pytest.fixture(scope="module")
def list_times():
    """Simulated seconds for list ranking: machine × class × p."""
    out = {}
    for label, nxt in (
        ("ordered", ordered_list(N_LIST)),
        ("random", random_list(N_LIST, 42)),
    ):
        seq = SMPMachine(p=1).run(rank_sequential(nxt).steps).seconds
        out[("seq", label)] = seq
        for p in (1, 2, 4, 8):
            hj = rank_helman_jaja(nxt, p=p, rng=1)
            out[("smp", label, p)] = SMPMachine(p=p).run(hj.steps).seconds
            mta = rank_mta(nxt, p=p)
            out[("mta", label, p)] = MTAMachine(p=p).run(mta.steps).seconds
    return out


class TestFig1Shapes:
    def test_smp_ordered_vs_random_gap_3_to_4x(self, list_times):
        """Paper: 'a factor of 3 to 4 difference' on the SMP."""
        for p in (1, 2, 4, 8):
            gap = list_times[("smp", "random", p)] / list_times[("smp", "ordered", p)]
            assert 2.0 < gap < 7.0, f"p={p}: gap {gap:.2f}"

    def test_mta_insensitive_to_order(self, list_times):
        """Paper: 'performance is nearly identical for random or ordered lists'."""
        for p in (1, 2, 4, 8):
            a = list_times[("mta", "ordered", p)]
            b = list_times[("mta", "random", p)]
            assert abs(a - b) < 0.1 * max(a, b)

    def test_mta_order_of_magnitude_faster_on_ordered(self, list_times):
        """Paper: 'on the ordered lists, the MTA is an order of magnitude faster'."""
        ratio = list_times[("smp", "ordered", 8)] / list_times[("mta", "ordered", 8)]
        assert 4.0 < ratio < 25.0

    def test_mta_much_faster_on_random(self, list_times):
        """Paper: 'on the random list, the MTA is approximately 35 times faster'."""
        ratio = list_times[("smp", "random", 8)] / list_times[("mta", "random", 8)]
        assert 15.0 < ratio < 70.0

    def test_both_machines_scale_with_p(self, list_times):
        """Paper: 'running times decreased proportionally with the number
        of processors'."""
        for machine in ("smp", "mta"):
            for label in ("ordered", "random"):
                ts = [list_times[(machine, label, p)] for p in (1, 2, 4, 8)]
                exp = scaling_exponent([1, 2, 4, 8], ts)
                assert exp < -0.75, f"{machine}/{label}: exponent {exp:.2f}"

    def test_parallel_smp_beats_sequential_on_random(self, list_times):
        """The paper's framing: parallel speedup over the best sequential
        implementation (hard on SMPs, the reason list ranking was a
        'holy grail')."""
        s = speedup(list_times[("seq", "random")], list_times[("smp", "random", 8)])
        assert s > 1.5


@pytest.fixture(scope="module")
def cc_times():
    """Simulated seconds for connected components at n=32K, m=8n."""
    n = 1 << 15
    g = random_graph(n, 8 * n, rng=3)
    out = {"uf": SMPMachine(p=1).run(cc_union_find(g).steps).seconds}
    for p in (1, 2, 4, 8):
        out[("smp", p)] = SMPMachine(p=p).run(sv_smp(g, p=p).steps).seconds
        out[("mta", p)] = MTAMachine(p=p).run(sv_mta(g, p=p).steps).seconds
    return out


class TestFig2Shapes:
    def test_mta_5_to_6x_faster_than_smp(self, cc_times):
        """Paper: 'the MTA implementation is 5 to 6 times faster than the
        SMP implementation of SV connected components'."""
        ratio = cc_times[("smp", 8)] / cc_times[("mta", 8)]
        assert 2.5 < ratio < 12.0

    def test_both_scale_with_p(self, cc_times):
        for machine in ("smp", "mta"):
            ts = [cc_times[(machine, p)] for p in (1, 2, 4, 8)]
            exp = scaling_exponent([1, 2, 4, 8], ts)
            assert exp < -0.6, f"{machine}: exponent {exp:.2f}"

    def test_parallel_speedup_over_sequential(self, cc_times):
        """Paper: first parallel implementation with speedup on sparse
        random graphs vs the best sequential algorithm."""
        assert cc_times[("smp", 8)] < cc_times["uf"]
        assert cc_times[("mta", 8)] < cc_times["uf"]


class TestTable1Shape:
    def test_mta_model_utilization_high_for_both_kernels(self):
        n = 1 << 16
        nxt = random_list(n, 0)
        run = rank_mta(nxt, p=1)
        util = MTAMachine(p=1).run(run.steps).utilization
        assert util > 0.9

        g = random_graph(1 << 13, 10 * (1 << 13), rng=0)
        cc = sv_mta(g, p=1)
        util_cc = MTAMachine(p=1).run(cc.steps).utilization
        assert util_cc > 0.85

    def test_utilization_declines_with_p_at_fixed_n(self):
        """Table 1's trend: utilization decreases as p grows (fixed
        problem size → less parallel slack per processor)."""
        n = 1 << 14
        nxt = random_list(n, 1)
        utils = []
        for p in (1, 4, 8):
            run = rank_mta(nxt, p=p)
            utils.append(MTAMachine(p=p).run(run.steps).utilization)
        assert utils[0] >= utils[1] >= utils[2]
