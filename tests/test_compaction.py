"""Tests for recursive list compaction (repro.lists.compaction)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lists.compaction import compaction_prefix, rank_by_compaction
from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.prefix import ADD, MAX
from repro.lists.sequential import prefix_sequential
from repro.lists.wyllie import wyllie_prefix


class TestCompactionCorrectness:
    @pytest.mark.parametrize("n", [1, 5, 255, 256, 257, 5000])
    def test_ranks_match_truth(self, n):
        nxt = random_list(n, 6)
        run = rank_by_compaction(nxt, p=2)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_ordered_lists(self):
        nxt = ordered_list(3000)
        run = rank_by_compaction(nxt, p=4)
        assert np.array_equal(run.ranks, true_ranks(nxt))

    def test_deep_recursion(self):
        # fanout 4 with a tiny threshold forces several compaction levels
        nxt = random_list(4096, 8)
        run = rank_by_compaction(nxt, p=2, fanout=4, threshold=8)
        assert np.array_equal(run.ranks, true_ranks(nxt))
        assert run.stats["levels"] >= 3

    def test_generic_operator(self, rng):
        nxt = random_list(1000, rng)
        values = rng.integers(0, 10_000, 1000)
        run = compaction_prefix(nxt, p=2, values=values, op=MAX)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, MAX))

    def test_add_values(self, rng):
        nxt = random_list(900, rng)
        values = rng.integers(-5, 5, 900)
        run = compaction_prefix(nxt, p=2, values=values, op=ADD)
        assert np.array_equal(run.prefix, prefix_sequential(nxt, values, ADD))


class TestCompactionEfficiency:
    def test_less_total_work_than_wyllie(self):
        """The point of the paper's Section 6 technique: compaction makes
        the non-work-efficient Wyllie part vanish."""
        n = 8192
        nxt = random_list(n, 2)
        comp = rank_by_compaction(nxt, p=1, fanout=10, threshold=256)
        wy = wyllie_prefix(nxt, p=1)
        assert comp.triplet.t_m < 0.25 * wy.triplet.t_m

    def test_base_case_small(self):
        run = rank_by_compaction(random_list(10_000, 3), p=1, fanout=10, threshold=256)
        assert run.stats["base_n"] <= 256


class TestCompactionErrors:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_by_compaction(np.empty(0, dtype=np.int64))

    def test_bad_fanout(self):
        with pytest.raises(ConfigurationError):
            rank_by_compaction(ordered_list(10), fanout=1)

    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            rank_by_compaction(ordered_list(10), threshold=0)

    def test_values_shape_checked(self):
        with pytest.raises(ConfigurationError):
            compaction_prefix(ordered_list(10), values=np.ones(3))
