"""Tests for the faithful PRAM Shiloach–Vishkin algorithm (Alg. 2)."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError, WorkloadError
from repro.graphs.edgelist import EdgeList
from repro.graphs.generate import (
    chain_graph,
    cliques_graph,
    forest_of_chains,
    mesh2d,
    random_graph,
    star_graph,
    worst_case_labeling,
)
from repro.graphs.shiloach_vishkin import star_vector, sv_pram

from .conftest import nx_cc_labels


class TestStarVector:
    def test_singletons_are_stars(self):
        d = np.arange(5)
        assert star_vector(d).all()

    def test_flat_star_detected(self):
        d = np.array([0, 0, 0, 0])
        assert star_vector(d).all()

    def test_depth_two_tree_is_not_a_star(self):
        # 2 -> 1 -> 0
        d = np.array([0, 0, 1])
        st = star_vector(d)
        assert not st[0] and not st[1] and not st[2]

    def test_mixed_forest(self):
        # star {0,1} and chain 4->3->2
        d = np.array([0, 0, 2, 2, 3])
        st = star_vector(d)
        assert st[0] and st[1]
        assert not st[2] and not st[3] and not st[4]

    def test_deep_chain_all_non_star(self):
        d = np.array([0, 0, 1, 2, 3, 4])
        assert not star_vector(d).any()


class TestSVCorrectness:
    @pytest.mark.parametrize(
        "g",
        [
            random_graph(300, 900, rng=0),
            mesh2d(10, 11),
            chain_graph(250),
            star_graph(100),
            cliques_graph(5, 7),
            forest_of_chains(6, 30, rng=1),
        ],
        ids=["random", "mesh", "chain", "star", "cliques", "forest"],
    )
    def test_matches_networkx(self, g):
        run = sv_pram(g)
        assert np.array_equal(run.labels, nx_cc_labels(g))

    def test_worst_case_labeling_still_correct(self):
        g = worst_case_labeling(random_graph(150, 300, rng=2))
        assert np.array_equal(sv_pram(g).labels, nx_cc_labels(g))

    def test_isolated_vertices(self):
        g = EdgeList(10, np.array([0]), np.array([1]))
        run = sv_pram(g)
        assert run.n_components == 9

    def test_empty_graph_rejected(self):
        with pytest.raises(WorkloadError):
            sv_pram(EdgeList(0, np.array([], dtype=np.int64), np.array([], dtype=np.int64)))

    def test_parents_are_rooted_stars_at_exit(self):
        g = random_graph(200, 500, rng=3)
        run = sv_pram(g)
        d = run.parents
        assert np.array_equal(d[d], d)


class TestSVComplexity:
    def test_iterations_logarithmic_on_chain(self):
        n = 512
        run = sv_pram(chain_graph(n))
        assert run.iterations <= 2 * math.ceil(math.log2(n)) + 2

    def test_star_converges_fast(self):
        run = sv_pram(star_graph(1000))
        assert run.iterations <= 3

    def test_four_barriers_per_full_iteration(self):
        g = chain_graph(64)
        run = sv_pram(g)
        assert run.triplet.b == pytest.approx(4 * run.iterations, abs=2)

    def test_max_iter_guard(self):
        with pytest.raises(SimulationError):
            sv_pram(chain_graph(512), max_iter=1)

    def test_graft_history_recorded(self):
        run = sv_pram(random_graph(100, 200, rng=1))
        assert len(run.stats["graft_history"]) == run.iterations
        assert run.stats["graft_history"][-1] == 0  # final iteration grafts nothing


class TestSVLabelingSensitivity:
    def test_iteration_count_depends_on_labeling(self):
        """The paper: 'SV is sensitive to the labeling of vertices.'"""
        base = chain_graph(512)
        worst = worst_case_labeling(base)
        it_best = sv_pram(base).iterations
        it_worst = sv_pram(worst).iterations
        assert it_best != it_worst or it_worst > 1


class TestStagnancyRegression:
    """Regression tests for the hook-cycle bug the paper's pseudocode hides.

    Without the stagnant-star condition in step 2, three stars arranged
    in a triangle can hook each other into a pointer 3-cycle that the
    shortcut oscillates on forever.  Property testing originally found
    the failing instance below (seed 36); it must converge now and
    forever."""

    def test_original_counterexample_converges(self):
        rng = np.random.default_rng(36)
        g = EdgeList(
            30,
            rng.integers(0, 30, 30).astype(np.int64),
            rng.integers(0, 30, 30).astype(np.int64),
        ).canonical()
        run = sv_pram(g)  # would raise SimulationError before the fix
        from repro.graphs.sequential_cc import cc_union_find

        assert np.array_equal(run.labels, cc_union_find(g).labels)

    def test_handcrafted_star_triangle(self):
        """Three 2-vertex stars whose leaves form a triangle."""
        #  stars: (0,1), (2,3), (4,5); triangle between leaves 1, 3, 5
        g = EdgeList(
            6,
            np.array([0, 2, 4, 1, 3, 5]),
            np.array([1, 3, 5, 3, 5, 1]),
        )
        run = sv_pram(g)
        assert run.n_components == 1

    def test_parents_never_cycle_midway(self):
        """After every public run, D must be a rooted forest (D[D] = D)."""
        for seed in range(20):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(3, 60))
            m = int(rng.integers(1, 120))
            g = EdgeList(
                n,
                rng.integers(0, n, m).astype(np.int64),
                rng.integers(0, n, m).astype(np.int64),
            ).canonical()
            if g.m == 0:
                continue
            run = sv_pram(g)
            d = run.parents
            assert np.array_equal(d[d], d), seed
