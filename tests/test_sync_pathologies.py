"""Pathological synchronization patterns must fail fast and explain why.

These are engine-level guarantees: a stuck program raises
:class:`~repro.errors.DeadlockError` via blocked-thread detection well
inside any cycle budget (never by exhausting ``max_cycles``), and an
attached :class:`~repro.analysis.ConcurrencyChecker` turns the blocked
inventory into an actionable diagnosis.
"""

import pytest

from tests import racy_programs as rp

from repro.analysis import ConcurrencyChecker
from repro.arch.memory import AddressSpace
from repro.errors import DeadlockError
from repro.sim import MTAEngine, isa
from repro.sim.smp_engine import SMPEngine

#: Far below the engines' defaults: deadlock detection is structural
#: (no runnable thread), so the budget must never be what stops us.
TIGHT_BUDGET = 10_000


class TestMTAPathologies:
    def test_ssf_to_full_word_deadlocks_fast(self):
        eng = MTAEngine(p=1, streams_per_proc=4)
        space = AddressSpace()
        w = space.alloc("word", 1)
        eng.set_full(w.addr(0), 7)

        def producer():
            yield isa.sync_store(w.addr(0), 8)

        eng.spawn(producer())
        with pytest.raises(DeadlockError) as exc:
            eng.run("stuck", max_cycles=TIGHT_BUDGET)
        assert "wait-empty" in str(exc.value)

    def test_mismatched_barrier_deadlocks_fast(self):
        eng = MTAEngine(p=1, streams_per_proc=4)
        eng.register_barrier("meet", 2)

        def lonely():
            yield isa.compute(1)
            yield isa.barrier("meet")

        eng.spawn(lonely())
        with pytest.raises(DeadlockError):
            eng.run("stuck", max_cycles=TIGHT_BUDGET)

    def test_checker_diagnoses_ssf_deadlock(self):
        report = rp.run_deadlock_ssf_full()
        [f] = report.errors
        assert f.check == "deadlock"
        assert "set_full" in f.message or f.witness.get("set_full")

    def test_checker_diagnoses_barrier_mismatch(self):
        report = rp.run_barrier_mismatch_mta()
        [f] = report.errors
        assert f.check == "barrier-mismatch"
        assert f.witness["arrived"] < f.witness["need"]


class TestSMPPathologies:
    def _lopsided(self, eng):
        def program(proc):
            yield isa.compute(1)
            if proc == 0:
                return
            yield isa.barrier("sync")

        for proc in range(2):
            eng.attach(program(proc))

    def test_mismatched_barrier_deadlocks_fast(self):
        eng = SMPEngine(p=2)
        self._lopsided(eng)
        with pytest.raises(DeadlockError) as exc:
            eng.run("stuck", max_ops=TIGHT_BUDGET)
        assert "barrier" in str(exc.value).lower()

    def test_checker_diagnoses_smp_barrier_mismatch(self):
        check = ConcurrencyChecker(program="lopsided")
        eng = SMPEngine(p=2, check=check)
        self._lopsided(eng)
        with pytest.raises(DeadlockError):
            eng.run("stuck", max_ops=TIGHT_BUDGET)
        [f] = check.report().errors
        assert f.check == "barrier-mismatch"
        assert f.witness["need"] == 2
