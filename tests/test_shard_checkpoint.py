"""Checkpoint/resume of sharded runs: coordinated consistent cuts.

A killed (paused) sharded run must resume from its per-shard snapshots
plus the coordinator manifest to the byte-identical result, for either
executor; stale or mismatched manifests must be rejected before any
state is touched.
"""

import pytest

from repro.errors import CheckpointError, ConfigurationError, RunPaused
from repro.sim.shard import PartitionPlan, load_manifest, run_sharded

from .shard_helpers import N_WORDS, P, build_cross, canon


def shard(k, W, **kw):
    plan = PartitionPlan(N_WORDS, P, k)
    return run_sharded(plan, workers=W, builder=build_cross,
                       params={"streams_per_proc": 16},
                       remote_latency=100, name="smoke",
                       budget=10_000_000, **kw)


class TestResume:
    @pytest.mark.parametrize("k,W,ex", [
        (4, 4, "inline"),
        (4, 4, "mp"),
        (2, 1, "inline"),
        (1, 1, "inline"),  # single-partition passthrough checkpoints too
    ])
    def test_paused_run_resumes_to_identical_result(self, tmp_path, k, W, ex):
        ref = shard(k, W)
        d = str(tmp_path / "ckpt")
        with pytest.raises(RunPaused):
            shard(k, W, executor=ex,
                  checkpoint={"dir": d, "every": 500, "stop_after": 1})
        res = shard(k, W, executor=ex, resume=d,
                    checkpoint={"dir": d, "every": 500})
        assert canon(res.report) == canon(ref.report)
        assert res.detail["checkpoints"] > 0

    def test_manifest_records_plan_and_workers(self, tmp_path):
        d = str(tmp_path / "ckpt")
        with pytest.raises(RunPaused):
            shard(2, 2, checkpoint={"dir": d, "every": 500, "stop_after": 1})
        manifest = load_manifest(d)
        assert manifest["workers"] == 2
        assert manifest["name"] == "smoke"
        assert manifest["cycle"] >= 500


class TestResumeValidation:
    def _pause(self, tmp_path, k=2, W=2):
        d = str(tmp_path / "ckpt")
        with pytest.raises(RunPaused):
            shard(k, W, checkpoint={"dir": d, "every": 500, "stop_after": 1})
        return d

    def test_wrong_plan_rejected(self, tmp_path):
        d = self._pause(tmp_path, k=2, W=2)
        with pytest.raises(CheckpointError, match="different partition plan"):
            shard(4, 2, resume=d)

    def test_wrong_worker_count_rejected(self, tmp_path):
        d = self._pause(tmp_path, k=4, W=2)
        with pytest.raises(CheckpointError, match="worker count"):
            shard(4, 4, resume=d)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            shard(2, 2, resume=str(tmp_path / "nope"))

    def test_checkpoint_config_needs_dir_and_every(self, tmp_path):
        with pytest.raises(ConfigurationError):
            shard(2, 2, checkpoint={"every": 500})
        with pytest.raises(ConfigurationError):
            shard(2, 2, checkpoint={"dir": str(tmp_path)})
