"""Intentionally-buggy (and matching clean) op-tuple programs.

Each ``run_*`` function builds a tiny program exhibiting exactly one
concurrency bug — or its corrected twin — executes it on a cycle
engine under a :class:`repro.analysis.ConcurrencyChecker`, and returns
the finalized :class:`repro.analysis.AnalysisReport`.  The analysis
test suite asserts that every detector fires on its buggy program and
stays quiet on the clean one; keeping the corpus importable (but not
named ``test_*``) also makes these programs handy documentation of
what each detector means.

All programs use the MTA engine unless the bug is SMP-specific: the
MTA engine exercises every sync primitive (full/empty words, FA
serialization, registered barriers).
"""

from __future__ import annotations

from repro.analysis import ConcurrencyChecker
from repro.arch.memory import AddressSpace
from repro.errors import DeadlockError
from repro.sim import MTAEngine, isa
from repro.sim.smp_engine import SMPEngine

#: Small cycle budget: corpus programs are tiny, and a detector bug
#: must surface as a diagnostic well before this, never as a hang.
MAX_CYCLES = 500_000


def _run_mta(build, *, strict=False, engine_kwargs=None):
    """Build + run one MTA corpus program; deadlocks become findings."""
    check = ConcurrencyChecker(strict=strict, program=build.__name__)
    eng = MTAEngine(p=1, streams_per_proc=8, check=check, **(engine_kwargs or {}))
    build(eng, check)
    try:
        eng.run("corpus", max_cycles=MAX_CYCLES)
    except DeadlockError:
        pass
    return check.report()


# -- races -------------------------------------------------------------------


def run_racy_store_store(strict=False):
    """Two threads store the same word with no ordering: write-write race."""

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("x", 4)
        check.set_address_space(space)

        def writer(v):
            yield isa.compute(v + 1)
            yield isa.store(a.addr(0))

        eng.spawn(writer(0))
        eng.spawn(writer(1))

    return _run_mta(build, strict=strict)


def run_racy_unsynced_read(strict=False):
    """Consumer loads a word the producer stores, with no sync edge."""

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("data", 4)
        check.set_address_space(space)

        def producer():
            yield isa.compute(5)
            yield isa.store(a.addr(0))

        def consumer():
            yield isa.compute(1)
            yield isa.load(a.addr(0))

        eng.spawn(producer())
        eng.spawn(consumer())

    return _run_mta(build, strict=strict)


def run_clean_fe_handoff(strict=False):
    """The corrected twin: the handoff goes through a full/empty word.

    The producer's plain store is ordered before the consumer's load by
    the SSF→SLE sync edge, so the race detector must stay quiet.
    """

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("data", 4)
        flag = space.alloc("flag", 1)
        check.set_address_space(space)

        def producer():
            yield isa.compute(5)
            yield isa.store(a.addr(0))
            yield isa.sync_store(flag.addr(0), 1)

        def consumer():
            yield isa.sync_load_consume(flag.addr(0))
            yield isa.load(a.addr(0))

        eng.spawn(producer())
        eng.spawn(consumer())

    return _run_mta(build, strict=strict)


def run_clean_fa_tickets(strict=False):
    """FA-dispatched disjoint slots: serialization orders the counter,
    distinct tickets keep the data writes disjoint — clean."""

    def build(eng, check):
        space = AddressSpace()
        ctr = space.alloc("ctr", 1)
        out = space.alloc("out", 8)
        check.set_address_space(space)
        eng.set_counter(ctr.addr(0), 0)

        def worker():
            ticket = yield isa.fetch_add(ctr.addr(0), 1)
            yield isa.store(out.addr(ticket))

        for _ in range(4):
            eng.spawn(worker())

    return _run_mta(build, strict=strict)


def run_racy_fa_neighbor(strict=False):
    """FA hands out tickets but each worker also reads its neighbor's
    slot — the FA edge does not cover that access: race."""

    def build(eng, check):
        space = AddressSpace()
        ctr = space.alloc("ctr", 1)
        out = space.alloc("out", 8)
        check.set_address_space(space)
        eng.set_counter(ctr.addr(0), 0)

        def worker():
            ticket = yield isa.fetch_add(ctr.addr(0), 1)
            yield isa.store(out.addr(ticket))
            yield isa.load(out.addr((ticket + 1) % 4))

        for _ in range(4):
            eng.spawn(worker())

    return _run_mta(build, strict=strict)


# -- deadlocks and sync initialization ---------------------------------------


def run_deadlock_ssf_full():
    """SSF to a word initialized Full, with no consumer: blocks forever."""

    def build(eng, check):
        space = AddressSpace()
        w = space.alloc("word", 1)
        check.set_address_space(space)
        eng.set_full(w.addr(0), 7)

        def producer():
            yield isa.sync_store(w.addr(0), 8)

        eng.spawn(producer())

    return _run_mta(build)


def run_clean_ssf_after_drain():
    """Corrected twin: a consumer drains the word first, so the second
    store finds it Empty."""

    def build(eng, check):
        space = AddressSpace()
        w = space.alloc("word", 1)
        check.set_address_space(space)
        eng.set_full(w.addr(0), 7)

        def consumer():
            yield isa.sync_load_consume(w.addr(0))

        def producer():
            yield isa.sync_store(w.addr(0), 8)
            yield isa.sync_load_consume(w.addr(0))

        eng.spawn(consumer())
        eng.spawn(producer())

    return _run_mta(build)


def run_sync_uninit_sle():
    """SLE on a word that was never set_full and has no producer."""

    def build(eng, check):
        space = AddressSpace()
        w = space.alloc("word", 1)
        check.set_address_space(space)

        def consumer():
            yield isa.sync_load_consume(w.addr(0))

        eng.spawn(consumer())

    return _run_mta(build)


# -- barriers ----------------------------------------------------------------


def run_barrier_mismatch_mta():
    """Barrier registered for two participants; only one ever arrives."""

    def build(eng, check):
        eng.register_barrier("meet", 2)

        def lonely():
            yield isa.compute(1)
            yield isa.barrier("meet")

        eng.spawn(lonely())

    return _run_mta(build)


def run_barrier_mismatch_smp():
    """SMP: one processor returns before the barrier the other enters."""
    check = ConcurrencyChecker(program="run_barrier_mismatch_smp")
    eng = SMPEngine(p=2, check=check)

    def program(proc):
        yield isa.compute(1)
        if proc == 0:
            return
        yield isa.barrier("sync")

    for proc in range(2):
        eng.attach(program(proc))
    try:
        eng.run("corpus")
    except DeadlockError:
        pass
    return check.report()


def run_clean_barrier_pair():
    """Both participants arrive: barrier orders the store before the load."""

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("x", 4)
        check.set_address_space(space)
        eng.register_barrier("meet", 2)

        def writer():
            yield isa.store(a.addr(0))
            yield isa.barrier("meet")

        def reader():
            yield isa.barrier("meet")
            yield isa.load(a.addr(0))

        eng.spawn(writer())
        eng.spawn(reader())

    return _run_mta(build)


def run_barrier_unused():
    """A registered barrier no thread ever reaches (dead sync object)."""

    def build(eng, check):
        eng.register_barrier("ghost", 2)

        def worker():
            yield isa.compute(2)

        eng.spawn(worker())

    return _run_mta(build)


# -- bounds, counters, phases ------------------------------------------------


def run_bounds_overrun():
    """A store one word past the end of the only allocation."""

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("arr", 4)
        check.set_address_space(space)

        def walker():
            for i in range(4):
                yield isa.store(a.addr(i))
            yield isa.store(a.base + 4)  # off the end; addr() would raise

        eng.spawn(walker())

    return _run_mta(build)


def run_clean_bounds():
    """Every access lands inside an allocation."""

    def build(eng, check):
        space = AddressSpace()
        a = space.alloc("arr", 4)
        b = space.alloc("brr", 2)
        check.set_address_space(space)

        def walker():
            for i in range(4):
                yield isa.store(a.addr(i))
            yield isa.load(b.addr(1))

        eng.spawn(walker())

    return _run_mta(build)


def run_fa_uninit():
    """FA on a cell never initialized by set_counter or a store."""

    def build(eng, check):
        space = AddressSpace()
        ctr = space.alloc("ctr", 1)
        check.set_address_space(space)

        def worker():
            yield isa.fetch_add(ctr.addr(0), 1)

        eng.spawn(worker())

    return _run_mta(build)


def run_phase_duplicate():
    """One thread emits the same phase marker twice in one run."""

    def build(eng, check):
        def worker():
            yield isa.phase("loop")
            yield isa.compute(1)
            yield isa.phase("loop")
            yield isa.compute(1)

        eng.spawn(worker())

    return _run_mta(build)
