"""Tests for expression trees and parallel tree contraction (repro.trees)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MTAMachine, SMPMachine
from repro.errors import WorkloadError
from repro.trees import evaluate_by_contraction, random_expression_tree
from repro.trees.expression import ADD_OP, MUL_OP, ExpressionTree

MOD = 1_000_000_007


def manual_tree():
    """(2 + 3) * 4 — built by hand."""
    #        0:*
    #      1:+   2:4
    #    3:2  4:3
    return ExpressionTree(
        left=np.array([1, 3, -1, -1, -1]),
        right=np.array([2, 4, -1, -1, -1]),
        op=np.array([MUL_OP, ADD_OP, 0, 0, 0]),
        value=np.array([0, 0, 4, 2, 3]),
        root=0,
    )


class TestExpressionTree:
    def test_manual_evaluation(self):
        t = manual_tree()
        assert t.evaluate_reference() == 20.0
        assert t.evaluate_reference(modulus=7) == 20 % 7

    def test_properties(self):
        t = manual_tree()
        assert t.n == 5
        assert t.n_leaves == 3
        parent, is_left = t.parents()
        assert parent.tolist() == [-1, 0, 0, 1, 1]
        assert bool(is_left[1]) and not bool(is_left[2])

    def test_generator_shapes(self):
        t = random_expression_tree(100, rng=0)
        assert t.n == 199
        assert t.n_leaves == 100

    def test_generator_deterministic(self):
        a = random_expression_tree(20, rng=5)
        b = random_expression_tree(20, rng=5)
        assert np.array_equal(a.left, b.left)
        assert np.array_equal(a.value, b.value)

    def test_validation_rejects_malformed(self):
        with pytest.raises(WorkloadError):
            ExpressionTree(  # node 1 has only one child
                left=np.array([1, 2, -1]),
                right=np.array([2, -1, -1]),
                op=np.zeros(3, dtype=np.int64),
                value=np.zeros(3, dtype=np.int64),
                root=0,
            )
        with pytest.raises(WorkloadError):
            random_expression_tree(0)


class TestContraction:
    def test_manual_tree(self):
        run = evaluate_by_contraction(manual_tree(), p=2, modulus=MOD)
        assert run.value == 20

    def test_single_leaf(self):
        t = random_expression_tree(1, rng=0)
        run = evaluate_by_contraction(t, modulus=MOD)
        assert run.value == int(t.value[t.root]) % MOD
        assert run.rounds == 0

    @pytest.mark.parametrize("leaves", [2, 3, 7, 64, 257, 1000])
    def test_matches_reference(self, leaves):
        t = random_expression_tree(leaves, rng=leaves)
        run = evaluate_by_contraction(t, p=4, modulus=MOD)
        assert run.value == t.evaluate_reference(modulus=MOD)

    def test_rounds_logarithmic(self):
        t = random_expression_tree(4096, rng=1)
        run = evaluate_by_contraction(t, p=8, modulus=MOD)
        assert run.rounds <= 2 * math.ceil(math.log2(4096)) + 8

    def test_skewed_tree(self):
        """A fully left-skewed comb — the adversarial shape for raking."""
        leaves = 200
        t = random_expression_tree(leaves, rng=3, add_probability=1.0)
        run = evaluate_by_contraction(t, p=4, modulus=MOD)
        assert run.value == t.evaluate_reference(modulus=MOD)

    def test_float_mode_additions(self):
        t = random_expression_tree(300, rng=2, add_probability=1.0, value_range=(0, 9))
        run = evaluate_by_contraction(t, p=4)
        assert run.value == pytest.approx(t.evaluate_reference())

    def test_costs_timed_on_both_machines(self):
        t = random_expression_tree(2000, rng=4)
        run = evaluate_by_contraction(t, p=8, modulus=MOD)
        assert MTAMachine(p=8).run(run.steps).seconds > 0
        assert SMPMachine(p=8).run(run.steps).seconds > 0
        # leaf numbering (the list-ranking part) is included
        assert any("leafnum" in s.name for s in run.steps)

    def test_raked_counts_sum_to_leaves_minus_two(self):
        t = random_expression_tree(500, rng=6)
        run = evaluate_by_contraction(t, p=2, modulus=MOD)
        assert sum(run.stats["raked"]) == 500 - 2

    def test_bad_modulus(self):
        with pytest.raises(WorkloadError):
            evaluate_by_contraction(manual_tree(), modulus=1)
        with pytest.raises(WorkloadError):
            evaluate_by_contraction(manual_tree(), modulus=1 << 40)


@settings(max_examples=60, deadline=None)
@given(
    leaves=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=2**31),
    p=st.integers(min_value=1, max_value=6),
)
def test_property_contraction_exact_mod_prime(leaves, seed, p):
    t = random_expression_tree(leaves, rng=seed, value_range=(0, 1000))
    run = evaluate_by_contraction(t, p=p, modulus=MOD)
    assert run.value == t.evaluate_reference(modulus=MOD)
