"""Tests for the analytic SMP machine model (repro.core.smp_machine)."""

import numpy as np
import pytest

from repro.core.cost import StepCost
from repro.core.smp_machine import SUN_E4500, SMPConfig, SMPMachine
from repro.errors import ConfigurationError


def step(p=1, **kw):
    kw.setdefault("name", "s")
    return StepCost(p=p, **kw)


class TestSMPConfig:
    def test_default_is_e4500(self):
        assert SUN_E4500.clock_hz == 400e6
        assert SUN_E4500.l1.size_words == 4096  # 16 KB of 4-byte ints
        assert SUN_E4500.l2.size_words == 1 << 20  # 4 MB of 4-byte ints

    def test_barrier_cost_grows_with_p(self):
        assert SUN_E4500.barrier_cycles(8) > SUN_E4500.barrier_cycles(2)
        assert SUN_E4500.barrier_cycles(1) == SUN_E4500.barrier_base_cycles

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            SMPConfig(max_p=0)
        with pytest.raises(ConfigurationError):
            SMPConfig(clock_hz=0)
        with pytest.raises(ConfigurationError):
            SMPConfig(bus_words_per_cycle=0)


class TestSMPMachineBasics:
    def test_p_bounds(self):
        with pytest.raises(ConfigurationError):
            SMPMachine(p=0)
        with pytest.raises(ConfigurationError):
            SMPMachine(p=SUN_E4500.max_p + 1)

    def test_with_p(self):
        m = SMPMachine(p=2).with_p(4)
        assert m.p == 4
        assert m.config is SUN_E4500

    def test_step_p_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SMPMachine(p=2).step_time(step(p=4, ops=1.0))


class TestSMPCostStructure:
    def test_noncontig_costlier_than_contig(self):
        m = SMPMachine(p=1)
        big_ws = 10 * SUN_E4500.l2.size_words
        a = m.step_time(step(contig=10000.0, working_set=big_ws))
        b = m.step_time(step(noncontig=10000.0, working_set=big_ws))
        assert b.cycles > 2 * a.cycles

    def test_working_set_tiers(self):
        """Scattered accesses get cheaper as the working set shrinks into cache."""
        m = SMPMachine(p=1)
        in_l1 = m.step_time(step(noncontig=1000.0, working_set=1000))
        in_l2 = m.step_time(step(noncontig=1000.0, working_set=100_000))
        in_mem = m.step_time(step(noncontig=1000.0, working_set=10_000_000))
        assert in_l1.cycles < in_l2.cycles < in_mem.cycles

    def test_scattered_writes_cheaper_than_scattered_reads(self):
        """The write buffer hides store latency."""
        m = SMPMachine(p=1)
        ws = 10 * SUN_E4500.l2.size_words
        r = m.step_time(step(noncontig=10000.0, working_set=ws))
        w = m.step_time(step(noncontig_writes=10000.0, working_set=ws))
        assert w.cycles < r.cycles

    def test_barrier_cost_added(self):
        m = SMPMachine(p=4)
        no_b = m.step_time(step(p=4, ops=100.0, barriers=0))
        with_b = m.step_time(step(p=4, ops=100.0, barriers=2))
        assert with_b.cycles - no_b.cycles == pytest.approx(
            2 * SUN_E4500.barrier_cycles(4)
        )

    def test_slowest_processor_sets_the_pace(self):
        m = SMPMachine(p=2)
        balanced = m.step_time(step(p=2, ops=np.array([50.0, 50.0])))
        skewed = m.step_time(step(p=2, ops=np.array([100.0, 0.0])))
        assert skewed.cycles > balanced.cycles

    def test_bus_floor_binds_for_heavy_traffic(self):
        """With enough processors streaming, the bus becomes the limit."""
        m = SMPMachine(p=8)
        st = m.step_time(step(p=8, contig=8e6, working_set=10_000_000))
        assert st.detail["bus_cycles"] >= st.detail["work_cycles"] * 0.5

    def test_run_aggregates_and_converts_seconds(self):
        m = SMPMachine(p=1)
        res = m.run([step(ops=400.0), step(ops=400.0)])
        assert res.cycles == pytest.approx(2 * 400.0 * SUN_E4500.cpi)
        assert res.seconds == pytest.approx(res.cycles / 400e6)


class TestSMPTraceMode:
    def test_trace_mode_used_when_traces_present(self):
        m = SMPMachine(p=1)
        trace = np.arange(1000, dtype=np.int64)
        st = m.step_time(step(traces=[trace]))
        assert st.detail["mode"] == "trace"

    def test_trace_mode_disabled_flag(self):
        m = SMPMachine(p=1, use_traces=False)
        st = m.step_time(step(noncontig=10.0, traces=[np.arange(10, dtype=np.int64)]))
        assert st.detail["mode"] == "counts"

    def test_sequential_trace_cheaper_than_random_trace(self, rng):
        # the ordered/random gap needs a working set beyond the 4 MB L2,
        # exactly as in the paper's large-list runs
        n = 1 << 20  # 8 MB of words
        m = SMPMachine(p=1)
        seq = np.arange(n, dtype=np.int64)
        rand = rng.permutation(n).astype(np.int64)
        t_seq = m.step_time(step(traces=[seq]))
        t_rand = m.step_time(step(traces=[rand]))
        assert t_rand.cycles > 2.0 * t_seq.cycles
