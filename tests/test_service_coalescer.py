"""Tests for request coalescing primitives (repro.service.coalescer)
and submission parsing/keys (repro.service.protocol)."""

import asyncio

import pytest

from repro.backends import Workload
from repro.core.runner import Job
from repro.service import (
    Coalescer,
    ProtocolError,
    parse_submission,
    submission_key,
)


def run(coro):
    return asyncio.run(coro)


def _job(n=64, seed=0):
    return Job(Workload("rank", 2, seed, {"n": n, "list": "random"}), "smp-model")


class TestCoalescer:
    def test_leader_then_followers_share_result(self):
        async def main():
            c = Coalescer()
            entry = c.lead("k1", "j-1")
            assert c.attach("k1", "j-2") is entry
            assert c.attach("k1", "j-3") is entry
            waiters = [asyncio.ensure_future(entry.future) for _ in range(2)]
            await asyncio.sleep(0)
            followers = c.resolve("k1", {"answer": 42})
            assert followers == 2
            assert await asyncio.gather(*waiters) == [{"answer": 42}] * 2
            assert len(c) == 0

        run(main())

    def test_attach_misses_when_not_in_flight(self):
        async def main():
            c = Coalescer()
            assert c.attach("nope", "j-1") is None

        run(main())

    def test_after_resolve_key_is_free_again(self):
        async def main():
            c = Coalescer()
            c.lead("k", "j-1")
            c.resolve("k", {})
            assert c.attach("k", "j-2") is None  # fresh execution required
            c.lead("k", "j-2")  # and leading again works

        run(main())

    def test_double_lead_rejected(self):
        async def main():
            c = Coalescer()
            c.lead("k", "j-1")
            with pytest.raises(KeyError):
                c.lead("k", "j-2")

        run(main())

    def test_reject_broadcasts_exception(self):
        async def main():
            c = Coalescer()
            entry = c.lead("k", "j-1")
            c.attach("k", "j-2")
            waiter = asyncio.ensure_future(asyncio.shield(entry.future))
            await asyncio.sleep(0)
            c.reject("k", ProtocolError("execution_error", "boom"))
            with pytest.raises(ProtocolError, match="boom"):
                await waiter

        run(main())

    def test_detach_removes_follower(self):
        async def main():
            c = Coalescer()
            entry = c.lead("k", "j-1")
            c.attach("k", "j-2")
            c.attach("k", "j-3")
            c.detach("k", "j-2")
            assert entry.followers == ["j-3"]
            assert c.resolve("k", {}) == 1

        run(main())

    def test_resolve_unknown_key_is_noop(self):
        async def main():
            c = Coalescer()
            assert c.resolve("ghost", {}) == 0
            assert c.reject("ghost", RuntimeError()) == 0

        run(main())


class TestSubmissionKey:
    def test_same_work_same_key(self):
        assert submission_key([_job()]) == submission_key([_job()])

    def test_different_work_different_key(self):
        assert submission_key([_job(seed=0)]) != submission_key([_job(seed=1)])

    def test_order_matters(self):
        a, b = _job(seed=0), _job(seed=1)
        assert submission_key([a, b]) != submission_key([b, a])

    def test_key_tracks_job_cache_key(self):
        """The coalescing key is built from the disk cache's own digests,
        so coalesced-equal implies cache-row-equal."""
        job = _job()
        assert job.key()  # same digest family
        assert submission_key([job]) == submission_key(
            [Job(job.workload, job.backend, backend_options=dict(job.backend_options))]
        )


class TestParseSubmission:
    def _workload_body(self, **over):
        body = {
            "workload": {"kind": "rank", "p": 2, "seed": 0,
                         "params": {"n": 64, "list": "random"}},
            "backend": "smp-model",
        }
        body.update(over)
        return body

    def test_single_workload_form(self):
        sub = parse_submission(self._workload_body())
        assert len(sub.jobs) == 1
        assert sub.jobs[0].backend == "smp-model"
        assert sub.priority == 0 and sub.timeout_s is None

    def test_spec_form(self):
        sub = parse_submission({"spec": "fig1-tiny"})
        assert sub.spec == "fig1-tiny"
        assert len(sub.jobs) > 1

    def test_jobs_batch_form(self):
        sub = parse_submission(
            {"jobs": [self._workload_body(), self._workload_body()]}
        )
        assert len(sub.jobs) == 2

    def test_knobs(self):
        sub = parse_submission(
            self._workload_body(priority=3, timeout_s=1.5, label="hello")
        )
        assert (sub.priority, sub.timeout_s, sub.label) == (3, 1.5, "hello")
        desc = sub.describe()
        assert desc["priority"] == 3 and desc["label"] == "hello"

    @pytest.mark.parametrize(
        "body",
        [
            None,
            [],
            {},
            {"spec": "fig1-tiny", "workload": {"kind": "rank"}},
            {"spec": "no-such-sweep"},
            {"spec": 7},
            {"workload": {"kind": "rank"}},  # no backend
            {"workload": "rank", "backend": "smp-model"},
            {"workload": {"p": 2}, "backend": "smp-model"},  # no kind
            {"jobs": []},
            {"jobs": "nope"},
        ],
    )
    def test_malformed_bodies_rejected(self, body):
        with pytest.raises(ProtocolError) as exc:
            parse_submission(body)
        assert exc.value.code == "bad_request"
        assert exc.value.status == 400

    @pytest.mark.parametrize(
        "knobs",
        [
            {"priority": "high"},
            {"priority": True},
            {"timeout_s": 0},
            {"timeout_s": -1},
            {"timeout_s": "soon"},
            {"label": 7},
        ],
    )
    def test_malformed_knobs_rejected(self, knobs):
        with pytest.raises(ProtocolError):
            parse_submission(self._workload_body(**knobs))

    def test_identical_bodies_coalesce_to_same_key(self):
        a = parse_submission(self._workload_body())
        b = parse_submission(self._workload_body(label="different label"))
        assert a.key == b.key  # labels are presentation-only

    def test_priority_affects_key_not(self):
        a = parse_submission(self._workload_body(priority=0))
        b = parse_submission(self._workload_body(priority=9))
        assert a.key == b.key
