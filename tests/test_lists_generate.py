"""Tests for list workload generators (repro.lists.generate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.lists.generate import (
    TAIL,
    clustered_list,
    head_of,
    list_from_order,
    ordered_list,
    random_list,
    true_ranks,
    validate_list,
)


class TestOrderedList:
    def test_structure(self):
        nxt = ordered_list(5)
        assert nxt.tolist() == [1, 2, 3, 4, TAIL]
        assert head_of(nxt) == 0

    def test_single_node(self):
        nxt = ordered_list(1)
        assert nxt.tolist() == [TAIL]
        assert head_of(nxt) == 0

    def test_ranks_match_positions(self):
        assert true_ranks(ordered_list(100)).tolist() == list(range(100))

    def test_negative_length_rejected(self):
        with pytest.raises(WorkloadError):
            ordered_list(-1)


class TestRandomList:
    def test_valid_chain(self):
        nxt = random_list(500, rng=0)
        assert validate_list(nxt) == head_of(nxt)

    def test_deterministic_given_seed(self):
        assert np.array_equal(random_list(100, rng=7), random_list(100, rng=7))

    def test_ranks_form_permutation(self):
        ranks = true_ranks(random_list(200, rng=1))
        assert sorted(ranks.tolist()) == list(range(200))


class TestClusteredList:
    def test_block_one_is_ordered(self):
        assert np.array_equal(clustered_list(64, block=1, rng=0), ordered_list(64))

    def test_big_block_is_fully_random_layout(self):
        nxt = clustered_list(64, block=64, rng=0)
        validate_list(nxt)

    def test_intermediate_blocks_valid(self):
        for block in (2, 7, 16):
            validate_list(clustered_list(100, block=block, rng=3))

    def test_bad_block_rejected(self):
        with pytest.raises(WorkloadError):
            clustered_list(10, block=0)


class TestHeadRecovery:
    def test_head_formula_matches_traversal(self, rng):
        for _ in range(10):
            nxt = random_list(int(rng.integers(1, 300)), rng)
            ranks = true_ranks(nxt)
            assert ranks[head_of(nxt)] == 0

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            head_of(np.empty(0, dtype=np.int64))


class TestValidateList:
    def test_cycle_detected(self):
        nxt = np.array([1, 2, 0, TAIL])  # 0→1→2→0 cycle plus orphan tail
        with pytest.raises(WorkloadError):
            validate_list(nxt)

    def test_fork_detected(self):
        # two nodes share a successor
        nxt = np.array([2, 2, TAIL])
        with pytest.raises(WorkloadError):
            validate_list(nxt)

    def test_no_tail_detected(self):
        nxt = np.array([1, 0])
        with pytest.raises(WorkloadError):
            validate_list(nxt)

    def test_two_tails_detected(self):
        nxt = np.array([TAIL, TAIL])
        with pytest.raises(WorkloadError):
            validate_list(nxt)

    def test_out_of_range_detected(self):
        nxt = np.array([5, TAIL])
        with pytest.raises(WorkloadError):
            validate_list(nxt)

    def test_float_dtype_rejected(self):
        with pytest.raises(WorkloadError):
            validate_list(np.array([1.0, -1.0]))


class TestTrueRanks:
    def test_malformed_detected(self):
        # head formula gives a plausible head but the chain is short
        nxt = np.array([1, 0, TAIL])  # 2 is unreachable; head formula breaks
        with pytest.raises(WorkloadError):
            true_ranks(nxt)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=2**31))
def test_property_any_permutation_is_a_valid_list(n, seed):
    order = np.random.default_rng(seed).permutation(n)
    nxt = list_from_order(order)
    head = validate_list(nxt)
    assert head == order[0]
    ranks = true_ranks(nxt)
    assert np.array_equal(np.argsort(ranks), order)
