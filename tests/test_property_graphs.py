"""Property-based tests: all CC algorithms agree on arbitrary graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.edgelist import EdgeList
from repro.graphs.sequential_cc import cc_bfs, cc_union_find
from repro.graphs.shiloach_vishkin import sv_pram
from repro.graphs.spanning_forest import spanning_forest
from repro.graphs.sv_mta import sv_mta
from repro.graphs.sv_smp import sv_smp
from repro.graphs.types import normalize_labels
from repro.graphs.variants import awerbuch_shiloach, hybrid_cc, random_mating


@st.composite
def graphs(draw, max_n=60, max_m=120):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    if n < 2:
        m = 0
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    return EdgeList(n, u.astype(np.int64), v.astype(np.int64)).canonical()


@settings(max_examples=40, deadline=None)
@given(g=graphs())
def test_all_cc_algorithms_agree(g):
    ref = cc_union_find(g).labels
    assert np.array_equal(cc_bfs(g).labels, ref)
    assert np.array_equal(sv_pram(g).labels, ref)
    assert np.array_equal(sv_mta(g, max_iter=1000).labels, ref)
    assert np.array_equal(sv_smp(g).labels, ref)
    assert np.array_equal(awerbuch_shiloach(g).labels, ref)
    assert np.array_equal(random_mating(g, rng=0).labels, ref)
    assert np.array_equal(hybrid_cc(g, rng=0).labels, ref)


@settings(max_examples=40, deadline=None)
@given(g=graphs())
def test_spanning_forest_properties(g):
    sf = spanning_forest(g, max_iter=1000)
    ref = cc_union_find(g).labels
    assert np.array_equal(sf.cc.labels, ref)
    assert sf.n_edges == g.n - len(np.unique(ref))


@settings(max_examples=40, deadline=None)
@given(g=graphs())
def test_labels_are_canonical_minimums(g):
    """Every vertex's label is the smallest vertex id in its component."""
    labels = sv_pram(g).labels
    for comp in np.unique(labels):
        members = np.flatnonzero(labels == comp)
        assert comp == members.min()


@settings(max_examples=30, deadline=None)
@given(g=graphs(), seed=st.integers(min_value=0, max_value=2**31))
def test_labels_invariant_under_relabeling(g, seed):
    """Relabeling vertices permutes components but not their structure."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(g.n).astype(np.int64)
    h = g.relabeled(perm)
    lg = sv_pram(g).labels
    lh = sv_pram(h).labels
    # two vertices share a component in g iff their images share one in h
    assert np.array_equal(lg == lg[0], lh[perm] == lh[perm[0]])


@settings(max_examples=30, deadline=None)
@given(g=graphs())
def test_normalize_labels_idempotent(g):
    lab = sv_pram(g).labels
    assert np.array_equal(normalize_labels(lab), lab)
