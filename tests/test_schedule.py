"""Tests for scheduling policies (repro.core.schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import block_assign, dynamic_assign, per_proc_totals
from repro.errors import ConfigurationError


class TestDynamicAssign:
    def test_round_robin_on_equal_weights(self):
        assign = dynamic_assign(np.ones(8), p=4)
        assert np.bincount(assign, minlength=4).tolist() == [2, 2, 2, 2]

    def test_balances_skewed_weights(self):
        # one huge item followed by many small ones: the huge item's
        # processor should receive nothing else
        weights = np.array([100.0] + [1.0] * 50)
        assign = dynamic_assign(weights, p=2)
        big_proc = assign[0]
        loads = per_proc_totals(assign, weights, 2)
        assert loads[big_proc] == pytest.approx(100.0)
        assert loads[1 - big_proc] == pytest.approx(50.0)

    def test_single_processor_gets_everything(self):
        assign = dynamic_assign(np.arange(5), p=1)
        assert set(assign.tolist()) == {0}

    def test_empty(self):
        assert dynamic_assign(np.empty(0), p=3).size == 0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            dynamic_assign(np.ones(3), p=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_dynamic_at_most_block_imbalance(self, weights, p):
        """Greedy self-scheduling never has a worse max load than any
        single item plus a fair share — the classic 2-approximation."""
        w = np.array(weights)
        assign = dynamic_assign(w, p)
        loads = per_proc_totals(assign, w, p)
        bound = w.sum() / p + w.max()
        assert loads.max() <= bound + 1e-9


class TestBlockAssign:
    def test_contiguous_blocks(self):
        assign = block_assign(10, p=3)  # ceil(10/3) = 4
        assert assign.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_exact_division(self):
        assert block_assign(6, p=3).tolist() == [0, 0, 1, 1, 2, 2]

    def test_empty(self):
        assert block_assign(0, p=2).size == 0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            block_assign(4, p=0)


class TestPerProcTotals:
    def test_sums(self):
        totals = per_proc_totals(np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]), 2)
        assert totals.tolist() == [4.0, 2.0]

    def test_idle_processors_zero(self):
        totals = per_proc_totals(np.array([0]), np.array([5.0]), 3)
        assert totals.tolist() == [5.0, 0.0, 0.0]
