"""Tests for scheduling policies (repro.core.schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import block_assign, dynamic_assign, per_proc_totals
from repro.errors import ConfigurationError


class TestDynamicAssign:
    def test_round_robin_on_equal_weights(self):
        assign = dynamic_assign(np.ones(8), p=4)
        assert np.bincount(assign, minlength=4).tolist() == [2, 2, 2, 2]

    def test_balances_skewed_weights(self):
        # one huge item followed by many small ones: the huge item's
        # processor should receive nothing else
        weights = np.array([100.0] + [1.0] * 50)
        assign = dynamic_assign(weights, p=2)
        big_proc = assign[0]
        loads = per_proc_totals(assign, weights, 2)
        assert loads[big_proc] == pytest.approx(100.0)
        assert loads[1 - big_proc] == pytest.approx(50.0)

    def test_single_processor_gets_everything(self):
        assign = dynamic_assign(np.arange(5), p=1)
        assert set(assign.tolist()) == {0}

    def test_empty(self):
        assert dynamic_assign(np.empty(0), p=3).size == 0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            dynamic_assign(np.ones(3), p=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_dynamic_at_most_block_imbalance(self, weights, p):
        """Greedy self-scheduling never has a worse max load than any
        single item plus a fair share — the classic 2-approximation."""
        w = np.array(weights)
        assign = dynamic_assign(w, p)
        loads = per_proc_totals(assign, w, p)
        bound = w.sum() / p + w.max()
        assert loads.max() <= bound + 1e-9


class TestBlockAssign:
    def test_contiguous_blocks(self):
        assign = block_assign(10, p=3)  # ceil(10/3) = 4
        assert assign.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_exact_division(self):
        assert block_assign(6, p=3).tolist() == [0, 0, 1, 1, 2, 2]

    def test_empty(self):
        assert block_assign(0, p=2).size == 0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            block_assign(4, p=0)


class TestPerProcTotals:
    def test_sums(self):
        totals = per_proc_totals(np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]), 2)
        assert totals.tolist() == [4.0, 2.0]

    def test_idle_processors_zero(self):
        totals = per_proc_totals(np.array([0]), np.array([5.0]), 3)
        assert totals.tolist() == [5.0, 0.0, 0.0]


class TestAssignmentProperties:
    """Property-based checks shared by both policies: every item in
    [0, n) is assigned exactly one processor in [0, p), including the
    p=1 and n < p edge cases."""

    sizes = st.integers(min_value=0, max_value=200)
    procs = st.integers(min_value=1, max_value=16)

    @settings(max_examples=100, deadline=None)
    @given(n=sizes, p=procs)
    def test_block_is_a_partition(self, n, p):
        assign = block_assign(n, p)
        assert assign.shape == (n,)
        if n:
            assert assign.min() >= 0 and assign.max() < p

    @settings(max_examples=100, deadline=None)
    @given(n=sizes, p=procs)
    def test_dynamic_is_a_partition(self, n, p):
        assign = dynamic_assign(np.ones(n), p)
        assert assign.shape == (n,)
        if n:
            assert assign.min() >= 0 and assign.max() < p

    @settings(max_examples=100, deadline=None)
    @given(n=sizes, p=procs)
    def test_block_chunks_are_contiguous_and_bounded(self, n, p):
        assign = block_assign(n, p)
        # each processor's items form one contiguous run of ≤ ceil(n/p)
        assert (np.diff(assign) >= 0).all()  # non-decreasing → contiguous
        counts = np.bincount(assign, minlength=p)
        assert counts.max(initial=0) <= (-(-n // p) if n else 0)

    @settings(max_examples=100, deadline=None)
    @given(n=sizes, p=procs)
    def test_dynamic_unit_weights_balance_within_one(self, n, p):
        assign = dynamic_assign(np.ones(n), p)
        counts = np.bincount(assign, minlength=p)
        assert counts.max(initial=0) - counts.min() <= 1

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=0, max_value=50))
    def test_p_equals_one_serializes(self, n):
        assert set(block_assign(n, 1).tolist()) <= {0}
        assert set(dynamic_assign(np.ones(n), 1).tolist()) <= {0}

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=7), extra=st.integers(1, 20))
    def test_more_procs_than_items(self, n, extra):
        p = n + extra
        # every item still lands on a distinct processor; none out of range
        block = block_assign(n, p)
        dyn = dynamic_assign(np.ones(n), p)
        for assign in (block, dyn):
            assert len(set(assign.tolist())) == n
            assert assign.max() < p
