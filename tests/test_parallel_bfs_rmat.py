"""Tests for parallel BFS and the R-MAT generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MTAMachine
from repro.errors import WorkloadError
from repro.graphs.edgelist import EdgeList
from repro.graphs.generate import chain_graph, random_graph, rmat_graph, star_graph
from repro.graphs.parallel_bfs import parallel_bfs

from .conftest import nx_cc_labels


def nx_depths(g, src):
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(zip(g.u.tolist(), g.v.tolist(), strict=False))
    d = np.full(g.n, -1, np.int64)
    for v, dist in nx.single_source_shortest_path_length(G, src).items():
        d[v] = dist
    return d


class TestRMAT:
    def test_basic_shape(self):
        g = rmat_graph(10, 8, rng=0)
        assert g.n == 1024
        assert g.m == 8 * 1024
        assert g.canonical().m == g.m  # unique, loop-free

    def test_heavy_tail(self):
        """R-MAT's hallmark: the max degree dwarfs the mean."""
        g = rmat_graph(12, 8, rng=1)
        deg = g.degrees()
        assert deg.max() > 10 * deg.mean()

    def test_uniform_parameters_recover_flat_degrees(self):
        g = rmat_graph(12, 8, a=0.25, b=0.25, c=0.25, rng=1)
        deg = g.degrees()
        assert deg.max() < 5 * deg.mean()

    def test_deterministic(self):
        a = rmat_graph(8, 4, rng=3)
        b = rmat_graph(8, 4, rng=3)
        assert np.array_equal(a.u, b.u)

    def test_dense_request_clamped(self):
        g = rmat_graph(2, 100, rng=0)  # 4 vertices can hold at most 6 edges
        assert g.m <= 6

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            rmat_graph(0)
        with pytest.raises(WorkloadError):
            rmat_graph(4, a=0.9, b=0.3, c=0.3)

    def test_cc_algorithms_handle_rmat(self):
        from repro.graphs.sequential_cc import cc_union_find
        from repro.graphs.sv_smp import sv_smp

        g = rmat_graph(9, 8, rng=5)
        assert np.array_equal(sv_smp(g).labels, cc_union_find(g).labels)


class TestParallelBFS:
    @pytest.mark.parametrize(
        "g",
        [
            random_graph(500, 2000, rng=0),
            chain_graph(300),
            star_graph(100),
            rmat_graph(9, 6, rng=1),
        ],
        ids=["random", "chain", "star", "rmat"],
    )
    def test_depths_match_networkx(self, g):
        run = parallel_bfs(g, source=0, p=4)
        assert np.array_equal(run.depth, nx_depths(g, 0))

    def test_parent_tree_consistent(self):
        g = random_graph(400, 1200, rng=2)
        run = parallel_bfs(g, source=0)
        for v in np.flatnonzero(run.parent >= 0):
            assert run.depth[run.parent[v]] + 1 == run.depth[v]

    def test_unreachable_marked(self):
        g = EdgeList(5, np.array([0, 3]), np.array([1, 4]))
        run = parallel_bfs(g, source=0)
        assert run.depth[2] == -1 and run.parent[2] == -1
        assert run.reached == 2

    def test_levels_equal_eccentricity_plus_one(self):
        run = parallel_bfs(chain_graph(64), source=0)
        assert run.levels == 64

    def test_one_step_per_level_with_barrier(self):
        g = random_graph(200, 600, rng=1)
        run = parallel_bfs(g, source=0)
        assert len(run.steps) == run.levels
        assert run.triplet.b == run.levels

    def test_parallelism_tracks_frontier_edges(self):
        g = star_graph(50)
        run = parallel_bfs(g, source=0)
        assert run.steps[0].parallelism == 49  # the whole star in one level

    def test_source_validation(self):
        with pytest.raises(WorkloadError):
            parallel_bfs(chain_graph(4), source=10)
        with pytest.raises(WorkloadError):
            parallel_bfs(EdgeList(0, np.empty(0, np.int64), np.empty(0, np.int64)))

    def test_wide_graphs_utilize_mta_better_than_chains(self):
        """The 'performance is a function of parallelism' thesis from the
        algorithm's side: random graphs feed the streams, chains starve
        them."""
        wide = parallel_bfs(random_graph(2000, 8000, rng=1), source=0, p=4)
        deep = parallel_bfs(chain_graph(500), source=0, p=4)
        u_wide = MTAMachine(p=4).run(wide.steps).utilization
        u_deep = MTAMachine(p=4).run(deep.steps).utilization
        assert u_wide > 10 * u_deep


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=80),
    m=st.integers(min_value=0, max_value=160),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_bfs_depth_is_shortest_path(n, m, seed):
    rng = np.random.default_rng(seed)
    if n < 2:
        m = 0
    g = EdgeList(
        n,
        rng.integers(0, n, m).astype(np.int64),
        rng.integers(0, n, m).astype(np.int64),
    ).canonical()
    src = int(rng.integers(0, n))
    run = parallel_bfs(g, source=src)
    assert np.array_equal(run.depth, nx_depths(g, src))
    # reached set == component of the source
    labels = nx_cc_labels(g)
    assert np.array_equal(run.depth >= 0, labels == labels[src])
