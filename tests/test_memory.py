"""Tests for the simulated address space and MTA hashing (repro.arch.memory)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.memory import AddressSpace, bank_of, hash_address
from repro.errors import ConfigurationError


class TestAddressSpace:
    def test_allocations_are_disjoint_and_aligned(self):
        sp = AddressSpace(align=64)
        a = sp.alloc("a", 100)
        b = sp.alloc("b", 10)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.end

    def test_addr_scalar_and_array(self):
        sp = AddressSpace()
        a = sp.alloc("a", 10)
        assert a.addr(3) == a.base + 3
        arr = a.addr(np.array([0, 9]))
        assert arr.tolist() == [a.base, a.base + 9]

    def test_addr_bounds_checked_for_scalars(self):
        sp = AddressSpace()
        a = sp.alloc("a", 10)
        with pytest.raises(IndexError):
            a.addr(10)
        with pytest.raises(IndexError):
            a.addr(-1)

    def test_duplicate_name_rejected(self):
        sp = AddressSpace()
        sp.alloc("a", 1)
        with pytest.raises(ConfigurationError):
            sp.alloc("a", 1)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpace().alloc("a", -1)

    def test_lookup_and_contains(self):
        sp = AddressSpace()
        a = sp.alloc("a", 5)
        assert sp["a"] is a
        assert "a" in sp
        assert "b" not in sp

    def test_size_high_water_mark(self):
        sp = AddressSpace(align=1)
        sp.alloc("a", 5)
        sp.alloc("b", 3)
        assert sp.size == 8

    def test_bad_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpace(align=0)


class TestHashAddress:
    def test_scalar_and_vector_agree(self):
        addrs = np.arange(100, dtype=np.int64)
        vec = hash_address(addrs)
        for i in range(100):
            assert int(vec[i]) == hash_address(i)

    def test_injective_on_sample(self):
        addrs = np.arange(100_000, dtype=np.int64)
        hashed = hash_address(addrs)
        assert len(np.unique(hashed)) == len(addrs)

    def test_scrambles_consecutive_addresses(self):
        # consecutive logical words must land on unrelated banks
        banks = bank_of(np.arange(1024), n_banks=64)
        counts = np.bincount(banks, minlength=64)
        # roughly uniform: no bank more than 3x the mean
        assert counts.max() <= 3 * counts.mean()

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**40))
    def test_property_hash_in_64bit_range(self, addr):
        h = hash_address(addr)
        assert 0 <= h < 2**64


class TestBankOf:
    def test_in_range(self):
        banks = bank_of(np.arange(1000), n_banks=16)
        assert banks.min() >= 0
        assert banks.max() < 16

    def test_scalar(self):
        assert 0 <= bank_of(12345, 8) < 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            bank_of(0, 12)
