"""Tests for the cluster machine model (repro.core.cluster_machine)."""

import pytest

from repro.core import BEOWULF_2005, ClusterConfig, ClusterMachine, SMPMachine
from repro.core.cost import StepCost
from repro.errors import ConfigurationError


def step(p=1, **kw):
    kw.setdefault("name", "s")
    return StepCost(p=p, **kw)


class TestClusterConfig:
    def test_remote_access_is_microseconds(self):
        cyc = BEOWULF_2005.remote_access_cycles
        us = cyc / BEOWULF_2005.clock_hz * 1e6
        assert 5.0 < us < 20.0  # sw overhead + RTT

    def test_batching_amortizes_but_bandwidth_floors(self):
        naive = ClusterConfig(batching=1).remote_access_cycles
        batched = ClusterConfig(batching=100).remote_access_cycles
        extreme = ClusterConfig(batching=1e9).remote_access_cycles
        assert batched < naive / 10
        assert extreme > 0  # the wire cost never vanishes

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(batching=0.5)
        with pytest.raises(ConfigurationError):
            ClusterConfig(bandwidth_mb_s=0)


class TestClusterMachine:
    def test_single_node_is_all_local(self):
        m = ClusterMachine(p=1)
        st = m.step_time(step(noncontig=1000.0))
        assert st.detail["remote_accesses"] == 0.0

    def test_remote_fraction_grows_with_p(self):
        s8 = ClusterMachine(p=8).step_time(step(p=8, noncontig=800.0))
        s2 = ClusterMachine(p=2).step_time(step(p=2, noncontig=800.0))
        assert s8.detail["remote_accesses"] > s2.detail["remote_accesses"]

    def test_scattered_access_is_catastrophic(self):
        """One remote get costs ~4 orders of magnitude more than a local
        cache miss — the cluster's defining property."""
        m = ClusterMachine(p=8)
        remote = m.config.remote_access_cycles
        assert remote > 100 * m.config.local_noncontig_cycles

    def test_p_bounds_and_with_p(self):
        with pytest.raises(ConfigurationError):
            ClusterMachine(p=0)
        assert ClusterMachine(p=2).with_p(16).p == 16

    def test_step_p_mismatch(self):
        with pytest.raises(ConfigurationError):
            ClusterMachine(p=2).step_time(step(p=4, ops=1.0))


class TestIntroClaim:
    """The paper's framing: 'few parallel graph algorithms outperform
    their best sequential implementation on clusters.'"""

    def test_fine_grained_parallel_loses_to_one_cpu(self):
        from repro.lists import random_list, rank_helman_jaja, rank_sequential

        nxt = random_list(1 << 16, 3)
        seq = SMPMachine(p=1).run(rank_sequential(nxt).steps).seconds
        par = ClusterMachine(p=8).run(rank_helman_jaja(nxt, p=8, rng=0).steps).seconds
        assert par > 3 * seq

    def test_aggregation_helps_but_rarely_enough(self):
        from repro.lists import random_list, rank_helman_jaja

        nxt = random_list(1 << 16, 3)
        run = rank_helman_jaja(nxt, p=8, rng=0)
        naive = ClusterMachine(p=8).run(run.steps).seconds
        batched = ClusterMachine(
            p=8, config=ClusterConfig(batching=256)
        ).run(run.steps).seconds
        assert batched < naive / 5  # aggregation is a big lever...
        from repro.lists import rank_sequential

        seq = SMPMachine(p=1).run(rank_sequential(nxt).steps).seconds
        assert batched > 0.3 * seq  # ...but still no clear win at this scale

    def test_shared_memory_wins_the_three_way_comparison(self):
        from repro.core import MTAMachine
        from repro.graphs import random_graph, sv_mta, sv_smp

        g = random_graph(1 << 15, 8 << 15, rng=2)
        smp_run = sv_smp(g, p=8)
        mta_run = sv_mta(g, p=8)
        t_cluster = ClusterMachine(p=8).run(smp_run.steps).seconds
        t_smp = SMPMachine(p=8).run(smp_run.steps).seconds
        t_mta = MTAMachine(p=8).run(mta_run.steps).seconds
        assert t_mta < t_smp < t_cluster
