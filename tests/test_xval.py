"""End-to-end tests of :mod:`repro.xval` — the model-vs-engine loop.

Three invariants:

* determinism — one committed golden (``tests/golden/xval_cc.jsonl``)
  byte-matches the CLI's default run, and a report is byte-identical
  across sweep worker counts, execution tiers, and cache round-trips;
* separation — the branch-aware SMP model and the SMP engine both
  charge the branch-avoiding CC variant strictly less branch cost than
  the branchy one, and agree on the sign of the gap;
* structure — kernel/machine pairs with no analytic counterpart fail
  with a configuration error (exit 2 from the CLI), never a traceback.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.backends import Workload
from repro.cli import main
from repro.core.runner import Job, SweepCache, run_jobs
from repro.errors import ConfigurationError
from repro.xval import (
    DivergenceReport,
    PhasePair,
    branch_separation,
    has_counterpart,
    run_xval,
)

GOLDEN = pathlib.Path(__file__).parent / "golden" / "xval_cc.jsonl"


def _workload(*, seed=1, options=None, **params_over):
    params = {"graph": "random", "n": 192, "m": 384}
    params.update(params_over)
    opts = {"machine": "smp", "variant": "branchy", "max_iter": 64}
    opts.update(options or {})
    return Workload(kind="cc", p=4, seed=seed, params=params, options=opts)


class TestGolden:
    def test_cli_default_run_matches_golden(self, capsys):
        """``repro xval`` with stock defaults reproduces the committed
        golden byte for byte."""
        rc = main(["xval", "--no-cache", "--jsonl", "-"])
        assert rc == 0
        assert capsys.readouterr().out == GOLDEN.read_text(encoding="utf-8")

    def test_report_roundtrips_through_dict(self):
        report, _ = run_xval(_workload())
        clone = DivergenceReport.from_dict(report.to_dict())
        assert clone.jsonl() == report.jsonl()
        assert clone.max_rel_error == report.max_rel_error


class TestDeterminism:
    def test_identical_across_sweep_worker_counts(self):
        jobs = [Job(_workload(seed=s, n=96, m=192), "cost-xval") for s in (1, 2)]
        serial = run_jobs(jobs, workers=1, cache=False)
        pooled = run_jobs(jobs, workers=2, cache=False)
        for a, b in zip(serial, pooled, strict=True):
            assert a.jsonl() == b.jsonl()
            ra = DivergenceReport.from_dict(a.detail["xval"])
            rb = DivergenceReport.from_dict(b.detail["xval"])
            assert ra.jsonl() == rb.jsonl()

    def test_identical_across_execution_tiers(self):
        texts = {}
        for tier in ("interpreted", "vector"):
            report, _ = run_xval(
                _workload(n=96, m=192, options={"tier": tier})
            )
            texts[tier] = report.jsonl()
        assert texts["interpreted"] == texts["vector"]

    def test_identical_through_the_result_cache(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        job = Job(_workload(n=96, m=192), "cost-xval")
        [fresh] = run_jobs([job], workers=1, cache=cache)
        [warm] = run_jobs([job], workers=1, cache=cache)
        assert not fresh.cached and warm.cached
        assert fresh.jsonl() == warm.jsonl()
        assert (
            DivergenceReport.from_dict(warm.detail["xval"]).jsonl()
            == DivergenceReport.from_dict(fresh.detail["xval"]).jsonl()
        )


class TestSeparation:
    def test_branch_avoiding_strictly_cheaper_on_both_stacks(self):
        sep = branch_separation(n=96, m=192, p=4, seed=1)
        s = sep["separation"]
        assert s["predicted_gap_cycles"] > 0.0
        assert s["simulated_gap_cycles"] > 0.0
        assert s["avoiding_lower_predicted"] and s["avoiding_lower_simulated"]
        assert s["sign_agreement"]
        avoiding = sep["branch-avoiding"]
        assert avoiding["predicted_branch_cycles"] == 0.0
        assert avoiding["simulated_branch_cycles"] == 0.0
        branchy = sep["branchy"]
        assert branchy["predicted_branch_cycles"] > 0.0
        assert branchy["simulated_branch_cycles"] > 0.0


class TestPairing:
    def test_smp_phases_pair_under_engine_names(self):
        report, summary = run_xval(_workload(n=96, m=192))
        assert report.pairs[0].name == "smp.sv-cc"
        engine_names = [name for name, _ in summary.phase_breakdown()]
        assert [p.name for p in report.pairs] == engine_names[: len(report.pairs)]
        assert report.unmatched_predicted == []
        assert report.simulated_total_cycles == summary.total_cycles

    def test_mta_pairing(self):
        report, summary = run_xval(
            Workload(
                kind="cc",
                p=4,
                seed=1,
                params={"graph": "random", "n": 96, "m": 192},
                options={"machine": "mta"},
            )
        )
        assert report.variant is None
        assert all(p.name.startswith("mta.") for p in report.pairs)
        assert report.unmatched_predicted == []
        assert report.unmatched_simulated == []

    def test_worst_ranks_by_relative_error(self):
        report, _ = run_xval(_workload(n=96, m=192))
        worst = report.worst(3)
        assert len(worst) == min(3, len(report.pairs))
        assert all(
            worst[i].rel_error >= worst[i + 1].rel_error
            for i in range(len(worst) - 1)
        )
        assert worst[0].rel_error == report.max_rel_error

    def test_phase_pair_errors(self):
        pair = PhasePair(name="x", predicted_cycles=80.0, simulated_cycles=100.0)
        assert pair.abs_error == 20.0
        assert pair.rel_error == pytest.approx(0.2)
        assert PhasePair.from_dict(pair.to_dict()) == pair


class TestStructuredErrors:
    def test_counterpart_table(self):
        assert has_counterpart("cc", "smp")
        assert has_counterpart("cc", "mta")
        assert not has_counterpart("rank", "smp")

    def test_missing_counterpart_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no analytic counterpart"):
            run_xval(
                Workload(kind="rank", p=2, seed=0, params={"n": 64}, options={})
            )

    def test_cli_reports_missing_counterpart_as_error(self, capsys):
        rc = main(["xval", "--workload", "rank", "--no-cache"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "no analytic counterpart" in captured.err
        assert "Traceback" not in captured.err

    def test_variant_on_mta_is_rejected(self):
        with pytest.raises(ConfigurationError, match="SMP-only"):
            run_xval(
                Workload(
                    kind="cc",
                    p=2,
                    seed=0,
                    params={"graph": "random", "n": 32, "m": 64},
                    options={"machine": "mta", "variant": "branchy"},
                )
            )

    def test_unknown_machine_is_rejected(self):
        with pytest.raises(ConfigurationError, match="no analytic counterpart"):
            run_xval(_workload(options={"machine": "cray-3"}))
