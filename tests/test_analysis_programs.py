"""End-to-end analysis of the real paper kernels.

The acceptance bar for the analyzer: every shipped op-tuple program is
happens-before clean (modulo the annotated Shiloach–Vishkin races,
which strict mode surfaces), and the backend ``check`` plumbing works
both as an explicit argument and as a workload option.
"""

import pytest

from repro.analysis import ConcurrencyChecker, analyze_suite, analyze_workload
from repro.backends import create
from repro.backends.base import Workload
from repro.errors import ConfigurationError

SMALL_CC = Workload(
    kind="cc", p=2, seed=7, params={"graph": "random", "n": 64, "m": 256}
)


class TestPaperSuite:
    def test_every_paper_program_is_clean(self):
        results = analyze_suite()
        assert [name for name, _ in results] == [
            "fig1/rank/mta/random",
            "fig1/rank/mta/ordered",
            "fig1/rank/smp/helman-jaja",
            "fig2/cc/mta/sv",
            "fig2/cc/smp/sv",
            "table1/chase",
        ]
        for name, report in results:
            assert report.ok(), f"{name}: {[f.render() for f in report.findings]}"
            assert report.stats["ops"] > 0

    def test_mta_rank_is_clean_without_suppressions(self):
        report = analyze_workload(
            Workload(kind="rank", p=2, seed=3, params={"n": 256, "list": "random"},
                     options={"streams_per_proc": 8}),
            "mta-engine",
        )
        assert report.ok()
        assert report.stats.get("suppressed_races", 0) == 0

    def test_cc_suppressions_are_annotated(self):
        report = analyze_workload(SMALL_CC, "smp-engine")
        assert report.ok()
        assert report.stats["suppressed_races"] > 0
        assert report.stats["suppression_reasons"]

    def test_strict_mode_surfaces_sv_races(self):
        report = analyze_workload(SMALL_CC, "smp-engine", strict=True)
        assert not report.ok()
        assert report.errors and all(f.check == "race" for f in report.errors)

    def test_max_findings_caps_and_counts_dropped(self):
        report = analyze_workload(SMALL_CC, "smp-engine", strict=True, max_findings=3)
        assert len(report.findings) == 3
        assert report.stats["dropped_findings"] > 0


class TestBackendPlumbing:
    def test_model_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_workload(SMALL_CC, "smp-model")

    def test_check_option_attaches_summary(self):
        backend = create("smp-engine")
        wl = Workload(kind="cc", p=2, seed=7,
                      params={"graph": "random", "n": 64, "m": 256},
                      options={"check": True})
        summary = backend.execute(backend.prepare(wl))
        analysis = summary.detail["analysis"]
        assert analysis["errors"] == 0
        assert analysis["stats"]["suppressed_races"] > 0

    def test_explicit_checker_takes_precedence(self):
        backend = create("smp-engine")
        check = ConcurrencyChecker(strict=True, program="explicit")
        summary = backend.execute(backend.prepare(SMALL_CC), check=check)
        assert "analysis" not in summary.detail
        assert not check.report().ok()

    def test_workload_without_check_option_pays_nothing(self):
        backend = create("smp-engine")
        summary = backend.execute(backend.prepare(SMALL_CC))
        assert "analysis" not in summary.detail
