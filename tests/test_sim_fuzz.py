"""Fuzz tests: random thread programs must never wedge the engines.

Hypothesis generates arbitrary well-formed op sequences (no orphan
barriers, producers matched to consumers) and checks the engines'
global invariants: termination, exact instruction accounting,
utilization bounds, and conservation of fetch-add increments.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MTAEngine, SMPEngine, isa

# one op of a random straight-line program (no sync ops — those need
# matched partners and are fuzzed separately below)
plain_op = st.one_of(
    st.integers(min_value=1, max_value=5).map(isa.compute),
    st.integers(min_value=0, max_value=4000).map(isa.load),
    st.integers(min_value=0, max_value=4000).map(isa.load_dep),
    st.integers(min_value=0, max_value=4000).map(isa.store),
    st.integers(min_value=0, max_value=16).map(lambda a: isa.fetch_add(a, 1)),
)

program_strategy = st.lists(plain_op, min_size=0, max_size=30)


def make_gen(ops):
    def gen():
        for op in ops:
            result = yield op
            del result

    return gen()


@settings(max_examples=50, deadline=None)
@given(programs=st.lists(program_strategy, min_size=1, max_size=12))
def test_mta_engine_accounts_every_instruction(programs):
    eng = MTAEngine(p=2, streams_per_proc=64, mem_latency=20)
    for addr in range(17):
        eng.set_counter(addr, 0)
    total_ops = 0
    for ops in programs:
        total_ops += sum(op[1] if op[0] == "C" else 1 for op in ops)
        eng.spawn(make_gen(ops))
    report = eng.run(max_cycles=2_000_000)
    assert report.total_issued == total_ops
    assert 0.0 <= report.utilization <= 1.0
    assert report.cycles >= -(-total_ops // 2)  # at most 2 issues per cycle (p=2)


@settings(max_examples=50, deadline=None)
@given(programs=st.lists(program_strategy, min_size=1, max_size=6))
def test_smp_engine_accounts_every_instruction(programs):
    p = len(programs)
    eng = SMPEngine(p=p)
    for addr in range(17):
        eng.set_counter(addr, 0)
    total_ops = 0
    for ops in programs:
        total_ops += len(ops)
        eng.attach(make_gen(ops))
    report = eng.run()
    assert report.total_issued == total_ops


@settings(max_examples=30, deadline=None)
@given(
    increments=st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_fetch_add_conserves_sum_under_any_interleaving(increments, seed):
    rng = np.random.default_rng(seed)
    eng = MTAEngine(p=int(rng.integers(1, 5)), streams_per_proc=64, mem_latency=5)
    eng.set_counter(0, 100)

    def adder(inc):
        yield isa.compute(int(rng.integers(1, 4)))
        yield isa.fetch_add(0, inc)

    for inc in increments:
        eng.spawn(adder(inc))
    eng.run()
    assert eng.fa_values[0] == 100 + sum(increments)


@settings(max_examples=30, deadline=None)
@given(n_pairs=st.integers(min_value=1, max_value=10), seed=st.integers(min_value=0, max_value=2**31))
def test_full_empty_pairs_always_complete(n_pairs, seed):
    """Matched producer/consumer sets never deadlock and every value
    is delivered exactly once."""
    rng = np.random.default_rng(seed)
    eng = MTAEngine(p=int(rng.integers(1, 4)), streams_per_proc=64, mem_latency=10)
    received = []

    def producer(addr, value, delay):
        yield isa.compute(delay)
        yield isa.sync_store(addr, value)

    def consumer(addr, delay):
        yield isa.compute(delay)
        v = yield isa.sync_load_consume(addr)
        received.append(v)

    for k in range(n_pairs):
        addr = 1000 + int(rng.integers(0, 3))  # shared cells across pairs
        eng.spawn(producer(addr, k, int(rng.integers(1, 20))))
        eng.spawn(consumer(addr, int(rng.integers(1, 20))))
    eng.run()
    assert sorted(received) == list(range(n_pairs))
