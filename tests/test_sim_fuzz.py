"""Fuzz tests: random thread programs must never wedge the engines.

Hypothesis generates arbitrary well-formed op sequences (no orphan
barriers, producers matched to consumers) and checks the engines'
global invariants: termination, exact instruction accounting,
utilization bounds, and conservation of fetch-add increments.

The second half is the **differential tier fuzzer**: the same random
programs (sync-word producer/consumer patterns, barriers, phase
markers, ``run_block`` chains, varying stream counts and machine
parameters) run on the interpreted *and* the vectorized tier of both
machines, and the resulting :class:`~repro.sim.SimReport` must be
byte-identical — cycles, per-processor issue counts, op histograms,
phase slices, barrier statistics, contention detail.  A failure prints
the seed and a one-line repro command; replay a single seed with::

    REPRO_FUZZ_SEED=<seed> PYTHONPATH=src python -m pytest \
        tests/test_sim_fuzz.py -k differential
"""

import json
import os
from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MTAEngine, SMPEngine, isa

# one op of a random straight-line program (no sync ops — those need
# matched partners and are fuzzed separately below)
plain_op = st.one_of(
    st.integers(min_value=1, max_value=5).map(isa.compute),
    st.integers(min_value=0, max_value=4000).map(isa.load),
    st.integers(min_value=0, max_value=4000).map(isa.load_dep),
    st.integers(min_value=0, max_value=4000).map(isa.store),
    st.integers(min_value=0, max_value=16).map(lambda a: isa.fetch_add(a, 1)),
)

program_strategy = st.lists(plain_op, min_size=0, max_size=30)


def make_gen(ops):
    def gen():
        for op in ops:
            result = yield op
            del result

    return gen()


@settings(max_examples=50, deadline=None)
@given(programs=st.lists(program_strategy, min_size=1, max_size=12))
def test_mta_engine_accounts_every_instruction(programs):
    eng = MTAEngine(p=2, streams_per_proc=64, mem_latency=20)
    for addr in range(17):
        eng.set_counter(addr, 0)
    total_ops = 0
    for ops in programs:
        total_ops += sum(op[1] if op[0] == "C" else 1 for op in ops)
        eng.spawn(make_gen(ops))
    report = eng.run(max_cycles=2_000_000)
    assert report.total_issued == total_ops
    assert 0.0 <= report.utilization <= 1.0
    assert report.cycles >= -(-total_ops // 2)  # at most 2 issues per cycle (p=2)


@settings(max_examples=50, deadline=None)
@given(programs=st.lists(program_strategy, min_size=1, max_size=6))
def test_smp_engine_accounts_every_instruction(programs):
    p = len(programs)
    eng = SMPEngine(p=p)
    for addr in range(17):
        eng.set_counter(addr, 0)
    total_ops = 0
    for ops in programs:
        total_ops += len(ops)
        eng.attach(make_gen(ops))
    report = eng.run()
    assert report.total_issued == total_ops


@settings(max_examples=30, deadline=None)
@given(
    increments=st.lists(st.integers(min_value=-5, max_value=5), min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_fetch_add_conserves_sum_under_any_interleaving(increments, seed):
    rng = np.random.default_rng(seed)
    eng = MTAEngine(p=int(rng.integers(1, 5)), streams_per_proc=64, mem_latency=5)
    eng.set_counter(0, 100)

    def adder(inc):
        yield isa.compute(int(rng.integers(1, 4)))
        yield isa.fetch_add(0, inc)

    for inc in increments:
        eng.spawn(adder(inc))
    eng.run()
    assert eng.fa_values[0] == 100 + sum(increments)


@settings(max_examples=30, deadline=None)
@given(n_pairs=st.integers(min_value=1, max_value=10), seed=st.integers(min_value=0, max_value=2**31))
def test_full_empty_pairs_always_complete(n_pairs, seed):
    """Matched producer/consumer sets never deadlock and every value
    is delivered exactly once."""
    rng = np.random.default_rng(seed)
    eng = MTAEngine(p=int(rng.integers(1, 4)), streams_per_proc=64, mem_latency=10)
    received = []

    def producer(addr, value, delay):
        yield isa.compute(delay)
        yield isa.sync_store(addr, value)

    def consumer(addr, delay):
        yield isa.compute(delay)
        v = yield isa.sync_load_consume(addr)
        received.append(v)

    for k in range(n_pairs):
        addr = 1000 + int(rng.integers(0, 3))  # shared cells across pairs
        eng.spawn(producer(addr, k, int(rng.integers(1, 20))))
        eng.spawn(consumer(addr, int(rng.integers(1, 20))))
    eng.run()
    assert sorted(received) == list(range(n_pairs))


# ---------------------------------------------------------------------------
# Differential tier fuzzing: vector tier ≡ interpreted tier, byte for byte
# ---------------------------------------------------------------------------

#: Seeds per machine (the acceptance floor is 200); ``REPRO_FUZZ_SEED``
#: narrows the run to one seed for replay.
_N_SEEDS = 200
_BLOCK = 10  # seeds per pytest item (keeps collection cheap)

_REPLAY = os.environ.get("REPRO_FUZZ_SEED")


def _canon(obj):
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    return obj


def _report_blob(report) -> str:
    """Canonical bytes of everything a SimReport observes."""
    return json.dumps(
        _canon(
            {
                "name": report.name,
                "p": report.p,
                "cycles": report.cycles,
                "issued": list(report.issued),
                "op_counts": report.op_counts,
                "detail": report.detail,
                "phases": [asdict(ph) for ph in report.phases],
            }
        ),
        sort_keys=True,
    )


def _fuzz_programs(rng):
    """A random matched set of stream programs, as op-list data.

    Mixes every construct the tiers must agree on: plain ops, fetch-adds,
    phase markers, ``run_block`` chains (biased toward pure dependent-load
    blocks — the vector tier's window food), one all-streams barrier, and
    matched sync-store/consume pairs (MTA only; the caller skips them on
    the SMP, whose machine has no full/empty handlers).
    """
    n_progs = int(rng.integers(1, 10))
    with_barrier = bool(rng.integers(0, 2)) and n_progs > 1
    progs = []
    for _ in range(n_progs):
        ops = []
        for _ in range(int(rng.integers(0, 14))):
            c = int(rng.integers(0, 7))
            if c == 0:
                ops.append(isa.compute(int(rng.integers(1, 5))))
            elif c == 1:
                ops.append(isa.load(int(rng.integers(0, 200))))
            elif c == 2:
                ops.append(isa.load_dep(int(rng.integers(0, 200))))
            elif c == 3:
                ops.append(isa.store(int(rng.integers(0, 200))))
            elif c == 4:
                ops.append(isa.fetch_add(int(rng.integers(0, 8)),
                                         int(rng.integers(-3, 4))))
            elif c == 5:
                ops.append(isa.phase(f"ph{int(rng.integers(0, 3))}"))
            else:
                if rng.integers(0, 2):
                    # pure dependent-load chain: the LD-window regime
                    blk = [isa.load_dep(int(a))
                           for a in rng.integers(0, 200, int(rng.integers(1, 40)))]
                else:
                    blk = []
                    for _ in range(int(rng.integers(1, 30))):
                        k = int(rng.integers(0, 4))
                        if k == 0:
                            blk.append(isa.compute(int(rng.integers(1, 4))))
                        elif k == 1:
                            blk.append(isa.load(int(rng.integers(0, 200))))
                        elif k == 2:
                            blk.append(isa.load_dep(int(rng.integers(0, 200))))
                        else:
                            blk.append(isa.store(int(rng.integers(0, 200))))
                ops.append(isa.run_block(blk))
        if with_barrier:
            ops.insert(int(rng.integers(0, len(ops) + 1)), isa.barrier("bz"))
        progs.append(ops)
    n_pairs = int(rng.integers(0, 3))
    pairs = [
        (900 + int(rng.integers(0, 2)), k,
         int(rng.integers(1, 9)), int(rng.integers(1, 9)))
        for k in range(n_pairs)
    ]
    return progs, with_barrier, pairs


def _gen_of(ops):
    def g():
        for op in ops:
            result = yield op
            del result

    return g()


def _run_fuzz_mta(tier: str, seed: int):
    rng = np.random.default_rng(seed)
    progs, with_barrier, pairs = _fuzz_programs(rng)
    eng = MTAEngine(
        p=int(rng.integers(1, 4)),
        streams_per_proc=16,
        mem_latency=int(rng.integers(1, 30)),
        lookahead=int(rng.integers(0, 4)),
        max_outstanding=int(rng.integers(1, 5)),
        tier=tier,
    )
    for addr in range(8):
        eng.set_counter(addr, 0)
    if with_barrier:
        eng.register_barrier("bz", len(progs))
    for ops in progs:
        eng.spawn(_gen_of(ops))

    def producer(addr, value, delay):
        yield isa.compute(delay)
        yield isa.sync_store(addr, value)

    def consumer(addr, delay):
        yield isa.compute(delay)
        v = yield isa.sync_load_consume(addr)
        del v

    for addr, value, d1, d2 in pairs:
        eng.spawn(producer(addr, value, d1))
        eng.spawn(consumer(addr, d2))
    report = eng.run("fuzz", 10_000_000)
    return _report_blob(report), eng.kernel.window_stats["windows"]


def _run_fuzz_smp(tier: str, seed: int):
    rng = np.random.default_rng(seed)
    progs, with_barrier, _pairs = _fuzz_programs(rng)
    eng = SMPEngine(p=len(progs), tier=tier)
    for addr in range(8):
        eng.set_counter(addr, 0)
    if with_barrier:
        eng.register_barrier("bz", len(progs))
    for ops in progs:
        eng.attach(_gen_of(ops))
    report = eng.run("fuzz")
    return _report_blob(report), 0


_RUNNERS = {"mta": _run_fuzz_mta, "smp": _run_fuzz_smp}

if _REPLAY is not None:
    _SEED_BLOCKS = [int(_REPLAY)]
else:
    _SEED_BLOCKS = list(range(0, _N_SEEDS, _BLOCK))


@pytest.mark.parametrize("machine", sorted(_RUNNERS))
@pytest.mark.parametrize("seed_block", _SEED_BLOCKS)
def test_differential_tiers_byte_identical(machine, seed_block):
    """Random programs produce byte-identical SimReports on both tiers."""
    runner = _RUNNERS[machine]
    seeds = [seed_block] if _REPLAY is not None else range(
        seed_block, seed_block + _BLOCK
    )
    for seed in seeds:
        interp, _ = runner("interpreted", seed)
        vector, _ = runner("vector", seed)
        assert interp == vector, (
            f"{machine} tier divergence at seed {seed}; replay with:\n"
            f"  REPRO_FUZZ_SEED={seed} PYTHONPATH=src python -m pytest "
            f"tests/test_sim_fuzz.py -k 'differential and {machine}'"
        )


# ---------------------------------------------------------------------------
# Sharded differential fuzzing: the repro.sim.shard equivalence contract
# ---------------------------------------------------------------------------
#
# Random matched programs run unsharded and at shards ∈ {1, 2, 4}:
#
# * with every *stateful* reference (fetch-add, sync words) kept
#   partition-local and remote_latency == mem_latency, every shard/worker
#   combination must be byte-identical to the unsharded kernel — reports
#   AND hook event streams;
# * with cross-partition stateful traffic (plus GV/PV value words), the
#   result must be identical across worker counts at a fixed shard count.

_SHARD_WORDS = 4000
_SHARD_P = 4  # proc j owns partition j at k=4; nested contiguously at k=2


def _shard_fuzz_case(rng, cross: bool):
    """Case data: machine params, programs pinned to home partitions,
    counters/sync cells to initialize, and an optional global barrier."""
    params = {
        "streams_per_proc": 16,
        "mem_latency": int(rng.integers(1, 30)),
        "lookahead": int(rng.integers(0, 4)),
        "max_outstanding": int(rng.integers(1, 5)),
    }
    n_progs = int(rng.integers(2, 8))
    with_barrier = bool(rng.integers(0, 2))
    counters = {}
    values = {}
    progs = []
    for _ in range(n_progs):
        home = int(rng.integers(0, 4))
        lo = 1000 * home
        ops = []
        for _ in range(int(rng.integers(1, 12))):
            c = int(rng.integers(0, 7 if cross else 5))
            if c == 0:
                ops.append(isa.compute(int(rng.integers(1, 5))))
            elif c == 1:
                ops.append(isa.load(int(rng.integers(0, _SHARD_WORDS))))
            elif c == 2:
                ops.append(isa.load_dep(int(rng.integers(0, _SHARD_WORDS))))
            elif c == 3:
                ops.append(isa.store(int(rng.integers(0, _SHARD_WORDS))))
            elif c == 4:
                base = int(rng.integers(0, 4)) * 1000 if cross else lo
                cell = base + int(rng.integers(0, 8))
                counters[cell] = 0
                ops.append(isa.fetch_add(cell, int(rng.integers(-3, 4))))
            elif c == 5:
                addr = int(rng.integers(0, 4)) * 1000 + 100 + int(rng.integers(0, 8))
                values[addr] = int(rng.integers(0, 50))
                ops.append(isa.get_value(addr))
            else:
                addr = int(rng.integers(0, 4)) * 1000 + 100 + int(rng.integers(0, 8))
                values[addr] = 0
                ops.append(isa.put_value(addr, int(rng.integers(0, 50))))
        if with_barrier:
            ops.insert(int(rng.integers(0, len(ops) + 1)), isa.barrier("bz"))
        progs.append((ops, home))
    pairs = []
    for k in range(int(rng.integers(0, 3))):
        home = int(rng.integers(0, 4))
        addr = 1000 * home + 900 + k
        consumer_proc = int(rng.integers(0, 4)) if cross else home
        pairs.append((addr, k, int(rng.integers(1, 9)),
                      int(rng.integers(1, 9)), home, consumer_proc))
    return {
        "params": params,
        "progs": progs,
        "with_barrier": with_barrier,
        "counters": counters,
        "values": values,
        "pairs": pairs,
    }


def _apply_shard_case(ctx, case, *, sharded: bool):
    """Replay one case through a builder context (worker or engine)."""

    def producer(addr, value, delay):
        yield isa.compute(delay)
        yield isa.sync_store(addr, value)

    def consumer(addr, delay):
        yield isa.compute(delay)
        v = yield isa.sync_load_consume(addr)
        del v

    for cell, value in sorted(case["counters"].items()):
        ctx.set_counter(cell, value)
    if sharded:
        for addr, value in sorted(case["values"].items()):
            ctx.set_value(addr, value)
    if case["with_barrier"]:
        ctx.register_barrier("bz", len(case["progs"]))
    for ops, proc in case["progs"]:
        ctx.spawn(_gen_of(ops), proc)
    for addr, value, d1, d2, home, cproc in case["pairs"]:
        ctx.spawn(producer(addr, value, d1), home)
        ctx.spawn(consumer(addr, d2), cproc)


class _UnshardedCtx:
    """Builder-context shim over a plain MTAEngine."""

    def __init__(self, eng):
        self.eng = eng

    def spawn(self, gen, proc):
        self.eng.spawn(gen, proc=proc)

    def set_counter(self, addr, value=0):
        self.eng.set_counter(addr, value)

    def register_barrier(self, bid, count):
        self.eng.register_barrier(bid, count)


def _run_shard_fuzz_unsharded(seed: int, *, events: bool):
    from repro.sim.shard.eventlog import ShardEventLog

    rng = np.random.default_rng(seed)
    case = _shard_fuzz_case(rng, cross=False)
    log = ShardEventLog() if events else None
    eng = MTAEngine(_SHARD_P, hooks=(log,) if log else (), **case["params"])
    _apply_shard_case(_UnshardedCtx(eng), case, sharded=False)
    report = eng.run("fuzz", 10_000_000)
    return _report_blob(report), (log.canonical() if log else None)


def _run_shard_fuzz_sharded(seed: int, k: int, workers: int, *,
                            cross: bool, events: bool):
    from repro.sim.shard import PartitionPlan, run_sharded

    rng = np.random.default_rng(seed)
    case = _shard_fuzz_case(rng, cross=cross)
    plan = PartitionPlan(_SHARD_WORDS, _SHARD_P, k)
    res = run_sharded(
        plan,
        workers=workers,
        builder=lambda ctx: _apply_shard_case(ctx, case, sharded=True),
        params=case["params"],
        name="fuzz",
        budget=10_000_000,
        collect_events=events,
    )
    return _report_blob(res.report), (res.events if events else None)


@pytest.mark.parametrize("seed", range(0, 12) if _REPLAY is None else [int(_REPLAY)])
def test_shard_fuzz_local_matches_unsharded(seed):
    """Partition-local stateful refs + R == mem_latency: every shard and
    worker count reproduces the unsharded kernel byte for byte."""
    events = seed < 4  # per-op hooks are slow; sample the stream check
    ref_blob, ref_events = _run_shard_fuzz_unsharded(seed, events=events)
    for k, workers in ((1, 1), (2, 1), (2, 2), (4, 2), (4, 4)):
        blob, evs = _run_shard_fuzz_sharded(
            seed, k, workers, cross=False, events=events
        )
        assert blob == ref_blob, (
            f"shard divergence seed={seed} k={k} W={workers}; replay with:\n"
            f"  REPRO_FUZZ_SEED={seed} PYTHONPATH=src python -m pytest "
            f"tests/test_sim_fuzz.py -k shard_fuzz_local"
        )
        if events:
            assert evs == ref_events, (
                f"event-stream divergence seed={seed} k={k} W={workers}"
            )


@pytest.mark.parametrize("seed", range(0, 8) if _REPLAY is None else [int(_REPLAY)])
def test_shard_fuzz_cross_traffic_worker_invariant(seed):
    """Cross-partition fetch-adds, sync pairs, and GV/PV value words:
    at a fixed shard count the result is worker-count invariant."""
    base, _ = _run_shard_fuzz_sharded(seed, 4, 1, cross=True, events=False)
    for workers in (2, 4):
        blob, _ = _run_shard_fuzz_sharded(seed, 4, workers, cross=True,
                                          events=False)
        assert blob == base, (
            f"worker-count divergence seed={seed} W={workers}; replay with:\n"
            f"  REPRO_FUZZ_SEED={seed} PYTHONPATH=src python -m pytest "
            f"tests/test_sim_fuzz.py -k shard_fuzz_cross"
        )


def test_differential_fuzz_exercises_ld_windows():
    """The fuzz corpus actually drives the MTA fast-forward (a corpus
    whose windows never fire would vacuously pass the differential
    check), and a hand-built pure-LD walk both fires windows and stays
    byte-identical."""
    windows = 0
    for seed in range(40):
        _, w = _run_fuzz_mta("vector", seed)
        windows += w
    assert windows > 0

    def walker(base):
        yield isa.run_block([isa.load_dep(base + 8 * i) for i in range(64)])
        yield isa.compute(1)
        yield isa.run_block([isa.load_dep(base + 8 * i) for i in range(32)])

    blobs = {}
    for tier in ("interpreted", "vector"):
        eng = MTAEngine(p=2, streams_per_proc=8, mem_latency=15, tier=tier)
        for k in range(16):
            eng.spawn(walker(k * 4096))
        report = eng.run("walk")
        blobs[tier] = _report_blob(report)
        if tier == "vector":
            assert eng.kernel.window_stats["windows"] > 0
            assert eng.kernel.tier_used == "vector"
    assert blobs["interpreted"] == blobs["vector"]
