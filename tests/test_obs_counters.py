"""Tests for the thread-safe counters/latency window (repro.obs.counters)."""

import threading

from repro.obs import CounterSet, LatencyWindow


class TestCounterSet:
    def test_inc_and_read(self):
        c = CounterSet()
        assert c.inc("hits") == 1
        assert c.inc("hits", 4) == 5
        assert c["hits"] == 5
        assert c["never_touched"] == 0

    def test_as_dict_is_a_snapshot(self):
        c = CounterSet()
        c.inc("a")
        snap = c.as_dict()
        c.inc("a")
        assert snap == {"a": 1}
        assert c["a"] == 2

    def test_thread_safety(self):
        c = CounterSet()

        def bump():
            for _ in range(1000):
                c.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c["n"] == 8000


class TestLatencyWindow:
    def test_empty_window(self):
        w = LatencyWindow()
        assert w.count == 0
        assert w.percentile(50) is None
        d = w.as_dict()
        assert d["count"] == 0
        assert d["p50_s"] is None and d["p95_s"] is None

    def test_percentiles_nearest_rank(self):
        w = LatencyWindow()
        for v in range(1, 101):  # 1..100
            w.observe(float(v))
        assert w.percentile(50) == 50.0
        assert w.percentile(95) == 95.0
        assert w.percentile(100) == 100.0

    def test_single_observation(self):
        w = LatencyWindow()
        w.observe(0.25)
        d = w.as_dict()
        assert d["count"] == 1
        assert d["p50_s"] == d["p95_s"] == d["max_s"] == 0.25

    def test_window_is_bounded_but_count_is_lifetime(self):
        w = LatencyWindow(maxlen=4)
        for v in (100.0, 1.0, 2.0, 3.0, 4.0):
            w.observe(v)
        assert w.count == 5  # every observation ever made
        assert w.as_dict()["max_s"] == 4.0  # but the 100.0 rolled out
