"""Tests for the analytic MTA machine model (repro.core.mta_machine)."""

import pytest

from repro.core.cost import StepCost
from repro.core.mta_machine import CRAY_MTA2, MTAConfig, MTAMachine
from repro.errors import ConfigurationError


def step(p=1, **kw):
    kw.setdefault("name", "s")
    return StepCost(p=p, **kw)


class TestMTAConfig:
    def test_default_is_mta2(self):
        assert CRAY_MTA2.clock_hz == 220e6
        assert CRAY_MTA2.streams_per_proc == 128
        assert CRAY_MTA2.mem_latency_cycles == 100.0

    def test_saturating_streams_matches_paper_claim(self):
        """The paper: 40–80 threads per processor hide the ~100-cycle latency."""
        assert 40 <= CRAY_MTA2.saturating_streams <= 80

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            MTAConfig(streams_per_proc=0)
        with pytest.raises(ConfigurationError):
            MTAConfig(mem_latency_cycles=0)
        with pytest.raises(ConfigurationError):
            MTAConfig(lookahead=0)


class TestInstructionPacking:
    def test_arithmetic_rides_free_with_memory(self):
        m = MTAMachine(p=1)
        # 100 memory ops can carry 200 fused arithmetic ops
        s = step(noncontig=100.0, ops=200.0)
        assert float(m.instructions(s).sum()) == pytest.approx(100.0)

    def test_leftover_arithmetic_packs_two_per_instruction(self):
        m = MTAMachine(p=1)
        s = step(noncontig=100.0, ops=400.0)
        # 200 fused + 200 leftover / 2 = 100 extra instructions
        assert float(m.instructions(s).sum()) == pytest.approx(200.0)

    def test_writes_count_as_memory_instructions(self):
        m = MTAMachine(p=1)
        s = step(noncontig_writes=50.0, contig_writes=50.0)
        assert float(m.instructions(s).sum()) == pytest.approx(100.0)


class TestUtilizationModel:
    def test_saturated_when_parallelism_ample(self):
        m = MTAMachine(p=1)
        assert m.utilization_for(10_000) == 1.0

    def test_single_thread_is_memory_bound(self):
        m = MTAMachine(p=1)
        u = m.utilization_for(1)
        c = CRAY_MTA2
        assert u == pytest.approx(c.lookahead / c.mem_latency_cycles)

    def test_utilization_scales_with_parallelism_until_saturation(self):
        m = MTAMachine(p=1)
        assert m.utilization_for(10) < m.utilization_for(40) <= m.utilization_for(200)

    def test_parallelism_shared_across_processors(self):
        u1 = MTAMachine(p=1).utilization_for(40)
        u8 = MTAMachine(p=8).utilization_for(40)
        assert u8 < u1


class TestMTAStepTime:
    def test_order_insensitive(self):
        """Contiguous and non-contiguous accesses cost the same — the
        hashed flat memory has no locality."""
        m = MTAMachine(p=1)
        a = m.step_time(step(contig=1000.0, parallelism=10_000))
        b = m.step_time(step(noncontig=1000.0, parallelism=10_000))
        assert a.cycles == pytest.approx(b.cycles)

    def test_hotspot_can_dominate(self):
        m = MTAMachine(p=1)
        s = m.step_time(step(noncontig=100.0, hotspot_ops=100_000, parallelism=1000))
        assert s.cycles >= 100_000

    def test_phase_overhead_charged_once_per_step(self):
        m = MTAMachine(p=1)
        c = m.config
        s = m.step_time(step(noncontig=0.0, ops=0.0))
        assert s.cycles == 0.0  # empty steps are free
        s2 = m.step_time(step(noncontig=1.0, parallelism=1000))
        assert s2.cycles >= c.phase_overhead_cycles + c.mem_latency_cycles

    def test_barrier_cost(self):
        m = MTAMachine(p=2)
        a = m.step_time(step(p=2, noncontig=10.0, barriers=0, parallelism=1000))
        b = m.step_time(step(p=2, noncontig=10.0, barriers=3, parallelism=1000))
        assert b.cycles - a.cycles == pytest.approx(3 * m.config.barrier_cycles)

    def test_p_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MTAMachine(p=2).step_time(step(p=1, ops=1.0))

    def test_with_p(self):
        m = MTAMachine(p=1).with_p(8)
        assert m.p == 8

    def test_utilization_reported_in_result(self):
        m = MTAMachine(p=1)
        res = m.run([step(noncontig=1e6, parallelism=1e6)])
        assert 0.8 < res.utilization <= 1.0
