"""Tests for the cycle-engine thread programs (lists + graphs)."""

import numpy as np
import pytest

from repro.graphs.generate import random_graph, star_graph
from repro.graphs.programs import simulate_mta_cc, simulate_smp_cc
from repro.graphs.sequential_cc import cc_union_find
from repro.lists.generate import ordered_list, random_list, true_ranks
from repro.lists.programs import simulate_mta_list_ranking, simulate_smp_list_ranking


class TestMTAListRankingSim:
    @pytest.mark.parametrize("n", [1, 10, 97, 1000])
    def test_computes_correct_ranks(self, n):
        nxt = random_list(n, 5)
        sim = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=32)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_multi_processor_correct(self):
        nxt = random_list(2000, 2)
        sim = simulate_mta_list_ranking(nxt, p=4)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_block_schedule_correct(self):
        nxt = random_list(1500, 3)
        sim = simulate_mta_list_ranking(nxt, p=2, dynamic=False)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_ordered_and_random_do_identical_work(self):
        """Flat hashed memory: layout must not change the instruction
        stream on the MTA.  (At miniature scale the *cycle* counts can
        still differ through walk-length tails — the longest random
        sublist drains the phase — which vanishes at the paper's sizes;
        the Table 1 benchmark reports that trend.)"""
        n = 3000
        a = simulate_mta_list_ranking(ordered_list(n), p=1)
        b = simulate_mta_list_ranking(random_list(n, 1), p=1)
        assert abs(a.report.total_issued - b.report.total_issued) < 0.1 * b.report.total_issued

    def test_utilization_in_unit_range(self):
        sim = simulate_mta_list_ranking(random_list(2000, 1), p=2)
        assert 0.0 < sim.report.utilization <= 1.0

    def test_more_streams_do_not_hurt_utilization(self):
        nxt = random_list(4000, 4)
        low = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=8)
        high = simulate_mta_list_ranking(nxt, p=1, streams_per_proc=100)
        assert high.report.cycles <= low.report.cycles

    def test_phase_reports_cover_algorithm(self):
        sim = simulate_mta_list_ranking(random_list(500, 1), p=1)
        names = [r.name for r in sim.phase_reports]
        assert names == ["mta.setup", "mta.walk", "mta.rank-walks", "mta.rerank"]
        assert sim.report.cycles == sum(r.cycles for r in sim.phase_reports)


class TestSMPListRankingSim:
    @pytest.mark.parametrize("n", [1, 50, 800])
    def test_computes_correct_ranks(self, n):
        nxt = random_list(n, 8)
        sim = simulate_smp_list_ranking(nxt, p=2, rng=1)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_processor_counts(self, p):
        nxt = random_list(1200, 9)
        sim = simulate_smp_list_ranking(nxt, p=p, rng=0)
        assert np.array_equal(sim.ranks, true_ranks(nxt))

    def test_ordered_faster_than_random(self):
        """Cache machine: layout must matter."""
        n = 4000
        a = simulate_smp_list_ranking(ordered_list(n), p=2, rng=0)
        b = simulate_smp_list_ranking(random_list(n, 1), p=2, rng=0)
        assert b.report.cycles > 1.3 * a.report.cycles

    def test_cache_stats_present(self):
        sim = simulate_smp_list_ranking(random_list(600, 1), p=2, rng=0)
        assert len(sim.report.detail["l1_hit_rate"]) == 2


class TestMTACCSim:
    @pytest.mark.parametrize("seed", range(3))
    def test_labels_correct(self, seed):
        g = random_graph(300, 1200, rng=seed)
        sim = simulate_mta_cc(g, p=2)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    def test_star_graph(self):
        g = star_graph(200)
        sim = simulate_mta_cc(g, p=1, streams_per_proc=32)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    def test_phases_alternate_graft_shortcut(self):
        g = random_graph(200, 800, rng=1)
        sim = simulate_mta_cc(g, p=1)
        names = [r.name for r in sim.phase_reports]
        assert names[0] == "mta.graft.1"
        assert all(n.startswith(("mta.graft", "mta.shortcut")) for n in names)

    def test_utilization_positive(self):
        g = random_graph(400, 2000, rng=2)
        sim = simulate_mta_cc(g, p=2)
        assert 0.1 < sim.report.utilization <= 1.0


class TestSMPCCSim:
    @pytest.mark.parametrize("seed", range(3))
    def test_labels_correct(self, seed):
        g = random_graph(250, 900, rng=seed)
        sim = simulate_smp_cc(g, p=2)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    @pytest.mark.parametrize("p", [1, 4])
    def test_processor_counts(self, p):
        g = random_graph(200, 700, rng=5)
        sim = simulate_smp_cc(g, p=p)
        assert np.array_equal(sim.labels, cc_union_find(g).labels)

    def test_iterations_recorded(self):
        g = random_graph(150, 500, rng=0)
        sim = simulate_smp_cc(g, p=2)
        assert sim.iterations >= 1


class TestCrossEngineShape:
    def test_mta_cc_faster_in_seconds_than_smp_cc(self):
        """The Fig. 2 headline at miniature scale."""
        g = random_graph(500, 3000, rng=7)
        mta = simulate_mta_cc(g, p=4)
        smp = simulate_smp_cc(g, p=4)
        assert mta.report.seconds < smp.report.seconds
