"""Unit tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    ContentionProfile,
    PhaseSummary,
    RunSummary,
    TraceEvent,
    Tracer,
    bucket_range,
    chrome_trace_dict,
    chrome_trace_json,
    jsonl_dumps,
    log2_bucket,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import MTAEngine, SMPEngine, isa
from repro.sim.stats import PhaseSlice, SimReport


def _report(name="run", p=2, cycles=100, issued=(30, 40), phases=(), detail=None):
    return SimReport(
        name=name,
        p=p,
        cycles=cycles,
        issued=np.array(issued, dtype=np.int64),
        clock_hz=1e6,
        op_counts={"LD": 50, "C": 20},
        detail=detail or {},
        phases=list(phases),
    )


class TestTraceEvent:
    def test_chrome_span_has_duration(self):
        e = TraceEvent(name="x", ph="X", ts=5.0, dur=3.0, pid=1, tid=2)
        d = e.to_chrome()
        assert d["dur"] == 3.0 and d["ts"] == 5.0 and d["ph"] == "X"

    def test_chrome_instant_has_scope_not_duration(self):
        d = TraceEvent(name="m", ph="i", ts=1.0).to_chrome()
        assert d["s"] == "t" and "dur" not in d

    def test_compact_roundtrip(self):
        e = TraceEvent(name="LD", ph="X", ts=7.0, dur=2.0, pid=3, tid=1, cat="op", args={"addr": 9})
        assert TraceEvent.from_compact(e.to_compact()) == e

    def test_compact_omits_defaults(self):
        d = TraceEvent(name="a", ph="i", ts=0.0).to_compact()
        assert set(d) == {"n", "ph", "ts"}


class TestTracer:
    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError):
            Tracer(level="verbose")

    def test_op_level_flag(self):
        assert not Tracer().op_level
        assert Tracer(level="op").op_level

    def test_span_applies_offset(self):
        t = Tracer()
        t.advance(100.0)
        t.span("a", 5.0, 8.0)
        assert t.events[-1].ts == 105.0 and t.events[-1].dur == 3.0

    def test_process_naming_idempotent(self):
        t = Tracer()
        t.name_process(0, "proc0")
        t.name_process(0, "proc0")
        assert len(t.events) == 1

    def test_record_run_emits_phase_spans_and_advances(self):
        slices = [
            PhaseSlice(name="a", start=0.0, end=60.0, issued=30),
            PhaseSlice(name="b", start=60.0, end=100.0, issued=40),
        ]
        t = Tracer()
        t.record_run(_report(phases=slices))
        spans = [e for e in t.events if e.ph == "X"]
        assert [s.name for s in spans] == ["a", "b"]
        assert t.offset == 100.0
        # a second run lands after the first
        t.record_run(_report(name="next"))
        assert t.events[-1].ts == 100.0 and t.offset == 200.0

    def test_record_run_without_slices_synthesizes_whole_run(self):
        t = Tracer()
        t.record_run(_report())
        spans = [e for e in t.events if e.ph == "X"]
        assert len(spans) == 1 and spans[0].dur == 100.0 and spans[0].name == "run"


class TestExport:
    def test_chrome_doc_shape(self):
        t = Tracer()
        t.span("a", 0.0, 4.0)
        doc = chrome_trace_dict(t.events, metadata={"k": "v"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"k": "v"}
        assert doc["traceEvents"][0]["name"] == "a"

    def test_chrome_json_deterministic_and_parseable(self):
        t = Tracer()
        t.span("a", 0.0, 4.0, args={"x": 2.0})
        s1 = chrome_trace_json(t.events)
        s2 = chrome_trace_json(list(t.events))
        assert s1 == s2
        assert json.loads(s1)["traceEvents"][0]["args"]["x"] == 2

    def test_integral_floats_render_as_ints(self):
        t = Tracer()
        t.span("a", 0.0, 4.0)
        assert '"ts":0' in chrome_trace_json(t.events)
        assert '"ts":0.0' not in chrome_trace_json(t.events)

    def test_jsonl_roundtrip_via_files(self, tmp_path):
        t = Tracer(level="op")
        t.name_process(0, "proc0")
        t.span("LD", 1.0, 6.0, args={"addr": 12})
        t.instant("mark", 3.0)
        p = write_jsonl(t.events, tmp_path / "t.jsonl")
        assert read_jsonl(p) == t.events

    def test_write_chrome_trace(self, tmp_path):
        t = Tracer()
        t.span("a", 0.0, 4.0)
        p = write_chrome_trace(t.events, tmp_path / "t.json")
        assert json.loads(p.read_text())["traceEvents"]

    def test_empty_jsonl(self):
        assert jsonl_dumps([]) == ""


class TestRunSummary:
    def test_from_report_single_phase(self):
        s = RunSummary.from_report(_report())
        assert s.cycles == 100.0 and s.issued == 70.0
        assert len(s.phases) == 1
        s.validate()

    def test_utilization_formula(self):
        s = RunSummary.from_report(_report())
        assert s.utilization == pytest.approx(70 / (2 * 100))

    def test_zero_cycle_run_is_fully_utilized(self):
        s = RunSummary(name="z", machine="", p=1, clock_hz=1.0, cycles=0.0, issued=0.0)
        assert s.utilization == 1.0

    def test_validate_rejects_bad_partition(self):
        s = RunSummary.from_report(_report())
        s.phases.append(PhaseSummary(name="extra", cycles=5.0, issued=0.0))
        with pytest.raises(ConfigurationError):
            s.validate()

    def test_from_reports_matches_combined_utilization(self):
        r1 = _report(name="a", cycles=70, issued=(10, 20))
        r2 = _report(name="b", cycles=30, issued=(5, 5))
        s = RunSummary.from_reports("both", [r1, r2])
        from repro.sim.stats import combine_reports

        combined = combine_reports("both", [r1, r2])
        assert s.utilization == combined.utilization
        s.validate()

    def test_from_reports_rejects_mixed_machines(self):
        r1 = _report()
        r2 = _report()
        r2.clock_hz = 2e6
        with pytest.raises(ConfigurationError):
            RunSummary.from_reports("x", [r1, r2])

    def test_from_reports_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RunSummary.from_reports("x", [])

    def test_phase_lookup(self):
        s = RunSummary.from_report(_report())
        assert s.phase("run").cycles == 100.0
        with pytest.raises(KeyError):
            s.phase("nope")

    def test_mem_ops_excludes_compute_and_barriers(self):
        ph = PhaseSummary(name="p", cycles=1.0, issued=10.0, op_counts={"LD": 3, "C": 5, "B": 1, "FA": 2})
        assert ph.mem_ops == 5

    def test_table_and_to_dict(self):
        s = RunSummary.from_report(_report())
        assert "utilization" in s.table()
        d = s.to_dict()
        assert d["phases"][0]["name"] == "run"
        assert d["utilization"] == s.utilization


class TestMachineResultSummary:
    def test_model_summary_matches_result(self):
        from repro.core import SMPMachine
        from repro.lists import random_list, rank_helman_jaja

        nxt = random_list(512, 0)
        res = SMPMachine(p=2).run(rank_helman_jaja(nxt, p=2, rng=0).steps)
        s = res.summary()
        s.validate()
        assert s.cycles == pytest.approx(res.cycles)
        # MachineResult clamps utilization at 1.0; otherwise identical
        assert min(1.0, s.utilization) == pytest.approx(res.utilization)


class TestContention:
    def test_log2_buckets(self):
        assert log2_bucket(0) == 0
        assert log2_bucket(1) == 1
        assert log2_bucket(2) == 2
        assert log2_bucket(3) == 2
        assert log2_bucket(4) == 3

    def test_bucket_ranges_cover_waits(self):
        for wait in (1, 2, 3, 7, 8, 100, 1023):
            lo, hi = bucket_range(log2_bucket(wait))
            assert lo <= wait < hi

    def test_from_report_reads_detail(self):
        r = _report(
            detail={
                "fa_sites": {10: (5, 7)},
                "fa_serialization_stalls": 7,
                "fe_wait_hist": {3: 2},
                "fe_wait_cycles": 11,
                "barrier_waits": {"b": {"episodes": 2, "wait_cycles": 6, "max_wait": 5}},
            }
        )
        prof = ContentionProfile.from_report(r)
        assert prof.fa_total_stalls == 7
        assert prof.hottest_fa_sites() == [(10, 5, 7)]
        text = prof.render()
        assert "int_fetch_add" in text and "full/empty" in text and "barriers" in text

    def test_total_stalls_default_from_sites(self):
        prof = ContentionProfile.from_report(_report(detail={"fa_sites": {1: (4, 2.5), 2: (1, 1.5)}}))
        assert prof.fa_total_stalls == 4

    def test_merge_accumulates(self):
        a = ContentionProfile.from_report(
            _report(detail={"fa_sites": {1: (2, 3)}, "barrier_wait_cycles": [1.0, 2.0]})
        )
        b = ContentionProfile.from_report(
            _report(detail={"fa_sites": {1: (1, 1), 2: (5, 0)}, "barrier_wait_cycles": [3.0, 4.0]})
        )
        a.merge(b)
        assert a.fa_sites[1] == (3, 4) and a.fa_sites[2] == (5, 0)
        assert a.barrier_wait_per_proc == [4.0, 6.0]

    def test_empty_profile_renders_placeholder(self):
        assert "no contention" in ContentionProfile().render()


class TestEngineIntegration:
    """Tracing against the real engines (tiny programs)."""

    def _mta_run(self, tracer=None):
        eng = MTAEngine(p=1, streams_per_proc=4, mem_latency=5, tracer=tracer)
        eng.set_counter(100, 0)

        def worker():
            yield isa.phase("work")
            for _ in range(3):
                yield isa.fetch_add(100, 1)
                yield isa.compute(2)
            yield isa.phase("tail")
            yield isa.store(200)

        eng.spawn(worker())
        return eng.run("demo")

    def test_phase_slices_partition_run(self):
        rep = self._mta_run()
        assert rep.phases
        assert sum(s.cycles for s in rep.phases) == rep.cycles
        assert rep.phases[0].start == 0 and rep.phases[-1].end == rep.cycles
        assert [s.name for s in rep.phases] == ["work", "tail"]

    def test_phase_markers_cost_nothing(self):
        with_marks = self._mta_run()
        eng = MTAEngine(p=1, streams_per_proc=4, mem_latency=5)
        eng.set_counter(100, 0)

        def worker():
            for _ in range(3):
                yield isa.fetch_add(100, 1)
                yield isa.compute(2)
            yield isa.store(200)

        eng.spawn(worker())
        plain = eng.run("demo")
        assert with_marks.cycles == plain.cycles
        assert with_marks.total_issued == plain.total_issued
        assert with_marks.op_counts == plain.op_counts

    def test_op_level_tracer_sees_operations(self):
        t = Tracer(level="op")
        rep = self._mta_run(tracer=t)
        names = {e.name for e in t.events if e.ph == "X"}
        assert "FA" in names and "S" in names
        assert t.offset == float(rep.cycles)

    def test_smp_phase_slices_partition_run(self):
        def program(proc):
            if proc == 0:
                yield isa.phase("warm")
            for j in range(8):
                yield isa.load(j * 64)
            yield isa.barrier("sync")
            if proc == 0:
                yield isa.phase("tail")
            yield isa.store(4096)

        eng = SMPEngine(p=2)
        for i in range(2):
            eng.attach(program(i))
        rep = eng.run("smp-demo")
        assert [s.name for s in rep.phases] == ["warm", "tail"]
        assert sum(s.cycles for s in rep.phases) == pytest.approx(float(rep.cycles))

    def test_smp_contention_counters_present(self):
        def program(proc):
            for j in range(4):
                yield isa.load(j * 64 + proc * 8192)
            yield isa.barrier("sync")

        eng = SMPEngine(p=2)
        for i in range(2):
            eng.attach(program(i))
        rep = eng.run("smp-demo")
        d = rep.detail
        assert len(d["barrier_wait_cycles"]) == 2
        assert d["barrier_episodes"] == 1
        assert len(d["l1_misses"]) == 2
