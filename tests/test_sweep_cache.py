"""Tests for the on-disk sweep-result cache (repro.core.cache)."""

import json


import repro.core.runner as runner_mod
from repro.backends import Workload
from repro.core import Job, SweepCache, code_version, run_jobs


def _job(seed=0, n=64):
    return Job(Workload("rank", 2, seed, {"n": n, "list": "random"}), "smp-model")


class TestSweepCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        record = {"summary": {"cycles": 1.0}, "backend": "smp-model"}
        cache.put("ab" * 32, record)
        assert cache.get("ab" * 32) == record
        assert cache.hits == 1 and cache.stores == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_record_is_miss_and_overwritable(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"ok": 1})
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, {"ok": 2})
        assert cache.get(key) == {"ok": 2}

    def test_sharded_layout(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "12" + "0" * 62
        cache.put(key, {})
        assert (tmp_path / "rows" / "12" / f"{key}.json").exists()

    def test_no_tmp_droppings(self, tmp_path):
        cache = SweepCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:02d}" + "0" * 62, {"i": i})
        assert not list(tmp_path.rglob("*.tmp"))

    def test_stats_line(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.get("00" * 32)
        assert "0/1 hits" in cache.stats_line()


class TestCacheKey:
    def test_key_depends_on_workload(self):
        assert _job(seed=0).key() != _job(seed=1).key()
        assert _job(n=64).key() != _job(n=128).key()

    def test_key_depends_on_backend(self):
        w = Workload("rank", 2, 0, {"n": 64, "list": "random"})
        assert Job(w, "smp-model").key() != Job(w, "mta-model").key()

    def test_key_depends_on_code_version(self, monkeypatch):
        import repro.core.cache as cache_mod

        before = _job().key()
        monkeypatch.setattr(cache_mod, "_code_version_memo", "deadbeef")
        assert _job().key() != before

    def test_code_version_is_memoized_and_hex(self):
        assert code_version() == code_version()
        int(code_version(), 16)
        assert len(code_version()) == 64


class TestWarmRerunExecutesNothing:
    """The ISSUE's acceptance gate: a warm-cache rerun performs no
    input generation and no algorithm execution at all."""

    def test_second_run_never_calls_execute(self, tmp_path, monkeypatch):
        jobs = [_job(seed=s) for s in range(3)]
        cache = SweepCache(tmp_path / "cache")
        cold = run_jobs(jobs, cache=cache)
        assert [r.cached for r in cold] == [False] * 3

        def boom(payload):
            raise AssertionError("algorithm executed on a warm cache")

        monkeypatch.setattr(runner_mod, "_execute_payload", boom)
        warm = run_jobs(jobs, cache=cache)
        assert [r.cached for r in warm] == [True] * 3
        assert [r.record for r in warm] == [r.record for r in cold]

    def test_cache_false_always_executes(self, tmp_path, monkeypatch):
        job = _job()
        calls = []
        real = runner_mod._execute_payload
        monkeypatch.setattr(
            runner_mod,
            "_execute_payload",
            lambda payload: calls.append(1) or real(payload),
        )
        run_jobs([job], cache=False)
        run_jobs([job], cache=False)
        assert len(calls) == 2

    def test_partial_warm_executes_only_misses(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path / "cache")
        run_jobs([_job(seed=0)], cache=cache)

        executed = []
        real = runner_mod._execute_payload
        monkeypatch.setattr(
            runner_mod,
            "_execute_payload",
            lambda payload: executed.append(payload["workload"]["seed"]) or real(payload),
        )
        results = run_jobs([_job(seed=0), _job(seed=1)], cache=cache)
        assert executed == [1]
        assert [r.cached for r in results] == [True, False]

    def test_cached_record_matches_disk_bytes(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        [cold] = run_jobs([_job()], cache=cache)
        on_disk = json.loads(cache._path(cold.key).read_text(encoding="utf-8"))
        assert on_disk == cold.record

    def test_key_depends_on_shard_count(self):
        a = Workload("cc", 4, 0, {"n": 64, "m": 192, "graph": "random"})
        b = Workload("cc", 4, 0,
                     {"n": 64, "m": 192, "graph": "random"},
                     options={"shards": 2})
        c = Workload("cc", 4, 0,
                     {"n": 64, "m": 192, "graph": "random"},
                     options={"shards": 4})
        keys = {Job(w, "mta-engine").key() for w in (a, b, c)}
        assert len(keys) == 3
