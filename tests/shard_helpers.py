"""Shared workload builders for the sharded-runtime tests.

Builders live at module level so the ``mp`` executor can pickle them;
generator *factories* are fine because the builder itself runs inside
each worker process (SPMD) and materializes the generators there.
"""

import json

from repro.sim import MTAEngine
from repro.sim import isa

N_WORDS = 4000
P = 4


def _walk(base, n, stride):
    for i in range(n):
        yield isa.load(base + i * stride)
        yield isa.compute(2)
        yield isa.store(base + i * stride + 1)


def _fa(cell, n):
    for _ in range(n):
        yield isa.fetch_add(cell, 1)
        yield isa.compute(1)


def _sync(addr, producer):
    if producer:
        yield isa.compute(5)
        yield isa.sync_store(addr, 42)
    else:
        v = yield isa.sync_load_consume(addr)
        assert v == 42, v


def _bar(bid, w):
    yield isa.compute(w + 1)
    yield isa.barrier(bid)
    yield isa.load(5 + w)


def _gv_pv(src, dst):
    v = yield isa.get_value(src)
    yield isa.compute(1)
    yield isa.put_value(dst, v + 1)


def build_cross(ctx):
    """Cross-partition FA, sync, and barrier traffic: exercises the
    remote-message path for every kernel-visible op kind (GV/PV value
    words are shard-only, so :func:`build_values` covers them)."""
    for proc in range(P):
        ctx.spawn(_walk(1000 * proc, 20, 3), proc)
    ctx.set_counter(10, 0)
    for proc in range(P):
        ctx.spawn(_fa(10, 5), proc)
    ctx.spawn(_sync(3900, True), 3)
    ctx.spawn(_sync(3900, False), 2)
    ctx.register_barrier("bz", P)
    for proc in range(P):
        ctx.spawn(_bar("bz", proc), proc)


def build_values(ctx):
    """Cross-partition GV/PV value-word traffic (engine-owned state)."""
    for proc in range(P):
        ctx.set_value(1000 * proc + 200, proc * 7)
        ctx.spawn(_gv_pv(1000 * ((proc + 1) % P) + 200,
                         1000 * proc + 201), proc)


def build_local(ctx):
    """Stateful refs (FA/sync) partition-local at k <= 4; plain loads
    roam everywhere.  With remote_latency == mem_latency this is
    byte-identical to the unsharded kernel at any k."""
    for proc in range(P):
        ctx.spawn(_walk(1000 * ((proc + 1) % P), 20, 3), proc)
    for proc in range(P):
        ctx.set_counter(1000 * proc + 10, 0)
        ctx.spawn(_fa(1000 * proc + 10, 5), proc)
    ctx.spawn(_sync(3900, True), 3)
    ctx.spawn(_sync(3900, False), 3)
    ctx.register_barrier("bz", P)
    for proc in range(P):
        ctx.spawn(_bar("bz", proc), proc)


def build_deadlock(ctx):
    """A consumer with no producer: must deadlock, not hang."""
    ctx.spawn(_sync(3900, False), 0)


class EngCtx:
    """Drive an unsharded engine facade with WorkerContext-style calls."""

    def __init__(self, eng):
        self.eng = eng

    def spawn(self, gen, proc):
        return self.eng.spawn(gen, proc=proc)

    def set_counter(self, addr, value=0):
        self.eng.set_counter(addr, value)

    def set_full(self, addr, value=0):
        self.eng.set_full(addr, value)

    def set_value(self, addr, value=0):
        self.eng.set_value(addr, value)

    def register_barrier(self, bid, count):
        self.eng.register_barrier(bid, count)


def run_unsharded(builder, hooks=()):
    eng = MTAEngine(P, streams_per_proc=16, hooks=hooks)
    builder(EngCtx(eng))
    return eng.run("smoke", 10_000_000)


def canon(r):
    """Byte-level identity of a SimReport, including phases and detail."""
    return json.dumps(
        {
            "name": r.name,
            "p": r.p,
            "cycles": r.cycles,
            "issued": [int(x) for x in r.issued],
            "op_counts": r.op_counts,
            "detail": r.detail,
            "phases": [
                (s.name, s.start, s.end, s.issued, s.op_counts)
                for s in r.phases
            ],
        },
        sort_keys=True,
        default=str,
    )
