"""Tests for the bounded priority admission queue (repro.service.queue)."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service import AdmissionQueue, QueueClosedError, QueueFullError


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_put_get_fifo_within_priority(self):
        async def main():
            q = AdmissionQueue(limit=4)
            for item in "abcd":
                q.put_nowait(item)
            return [await q.get() for _ in range(4)]

        assert run(main()) == ["a", "b", "c", "d"]

    def test_higher_priority_first(self):
        async def main():
            q = AdmissionQueue(limit=4)
            q.put_nowait("low", priority=0)
            q.put_nowait("high", priority=10)
            q.put_nowait("mid", priority=5)
            return [await q.get() for _ in range(3)]

        assert run(main()) == ["high", "mid", "low"]

    def test_full_queue_rejects_explicitly(self):
        async def main():
            q = AdmissionQueue(limit=2)
            q.put_nowait("a")
            q.put_nowait("b")
            with pytest.raises(QueueFullError) as exc:
                q.put_nowait("c")
            assert "2/2" in str(exc.value)
            assert len(q) == 2

        run(main())

    def test_slot_freed_after_get(self):
        async def main():
            q = AdmissionQueue(limit=1)
            q.put_nowait("a")
            await q.get()
            q.put_nowait("b")  # no raise
            assert len(q) == 1

        run(main())

    def test_limit_must_be_positive(self):
        async def main():
            with pytest.raises(ConfigurationError):
                AdmissionQueue(limit=0)

        run(main())


class TestWaiting:
    def test_get_waits_for_put(self):
        async def main():
            q = AdmissionQueue(limit=2)
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            q.put_nowait("x")
            assert await asyncio.wait_for(getter, 1.0) == "x"

        run(main())

    def test_concurrent_getters_each_get_one(self):
        async def main():
            q = AdmissionQueue(limit=8)
            getters = [asyncio.ensure_future(q.get()) for _ in range(3)]
            await asyncio.sleep(0.01)
            for item in ("a", "b", "c"):
                q.put_nowait(item)
            got = await asyncio.wait_for(asyncio.gather(*getters), 1.0)
            assert sorted(got) == ["a", "b", "c"]

        run(main())


class TestClose:
    def test_close_rejects_new_work(self):
        async def main():
            q = AdmissionQueue(limit=2)
            q.close()
            with pytest.raises(QueueClosedError):
                q.put_nowait("a")

        run(main())

    def test_close_drains_backlog_then_raises(self):
        async def main():
            q = AdmissionQueue(limit=4)
            q.put_nowait("a")
            q.put_nowait("b")
            q.close()
            assert await q.get() == "a"
            assert await q.get() == "b"
            with pytest.raises(QueueClosedError):
                await q.get()

        run(main())

    def test_close_wakes_blocked_getter(self):
        async def main():
            q = AdmissionQueue(limit=2)
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0.01)
            q.close()
            with pytest.raises(QueueClosedError):
                await asyncio.wait_for(getter, 1.0)

        run(main())


class TestRemove:
    def test_remove_withdraws_matching(self):
        async def main():
            q = AdmissionQueue(limit=8)
            for item in ("a", "b", "c", "b"):
                q.put_nowait(item)
            removed = q.remove(lambda x: x == "b")
            assert removed == ["b", "b"]
            assert len(q) == 2
            assert [await q.get(), await q.get()] == ["a", "c"]

        run(main())

    def test_remove_nothing(self):
        async def main():
            q = AdmissionQueue(limit=2)
            q.put_nowait("a")
            assert q.remove(lambda x: x == "zzz") == []
            assert len(q) == 1

        run(main())

    def test_remove_preserves_priority_order(self):
        async def main():
            q = AdmissionQueue(limit=8)
            q.put_nowait("lo", priority=0)
            q.put_nowait("hi", priority=9)
            q.put_nowait("gone", priority=5)
            q.remove(lambda x: x == "gone")
            return [await q.get(), await q.get()]

        assert run(main()) == ["hi", "lo"]
