"""Tests for the public invariant checkers (repro.validate)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graphs import random_graph, spanning_forest, sv_pram
from repro.lists import ordered_list, random_list, rank_mta, true_ranks
from repro.validate import (
    check_component_labels,
    check_ranks,
    check_rooted_forest,
    check_spanning_forest,
)


class TestCheckRanks:
    def test_accepts_truth(self):
        nxt = random_list(200, 1)
        check_ranks(nxt, true_ranks(nxt))
        check_ranks(nxt, rank_mta(nxt).ranks)

    def test_rejects_shuffled(self):
        nxt = ordered_list(10)
        with pytest.raises(WorkloadError):
            check_ranks(nxt, np.arange(10)[::-1])

    def test_rejects_non_permutation(self):
        nxt = ordered_list(4)
        with pytest.raises(WorkloadError):
            check_ranks(nxt, np.zeros(4, dtype=np.int64))

    def test_rejects_wrong_shape(self):
        with pytest.raises(WorkloadError):
            check_ranks(ordered_list(4), np.arange(3))

    def test_rejects_swapped_pair(self):
        nxt = ordered_list(6)
        ranks = true_ranks(nxt)
        ranks[2], ranks[3] = ranks[3], ranks[2]
        with pytest.raises(WorkloadError):
            check_ranks(nxt, ranks)


class TestCheckRootedForest:
    def test_accepts_stars(self):
        check_rooted_forest(np.array([0, 0, 0, 3, 3]))
        check_rooted_forest(sv_pram(random_graph(100, 300, rng=0)).parents)

    def test_rejects_chain(self):
        with pytest.raises(WorkloadError):
            check_rooted_forest(np.array([0, 0, 1]))


class TestCheckComponentLabels:
    def test_accepts_algorithm_output(self):
        g = random_graph(300, 900, rng=1)
        check_component_labels(g, sv_pram(g).labels)

    def test_rejects_crossing_edge(self):
        g = random_graph(50, 120, rng=2)
        labels = np.arange(50, dtype=np.int64)  # everyone their own class
        with pytest.raises(WorkloadError):
            check_component_labels(g, labels)

    def test_rejects_overmerged(self):
        g = random_graph(50, 40, rng=3)  # likely several components
        labels = np.zeros(50, dtype=np.int64)
        if sv_pram(g).n_components > 1:
            with pytest.raises(WorkloadError):
                check_component_labels(g, labels)

    def test_rejects_noncanonical(self):
        # a connected graph labeled consistently but not by its minimum
        g = random_graph(30, 200, rng=4)
        assert sv_pram(g).n_components == 1
        labels = np.full(30, 5, dtype=np.int64)
        with pytest.raises(WorkloadError):
            check_component_labels(g, labels)


class TestCheckSpanningForest:
    def test_accepts_algorithm_output(self):
        g = random_graph(200, 600, rng=5)
        sf = spanning_forest(g)
        check_spanning_forest(g, sf.edge_ids)

    def test_rejects_cycle(self):
        g = random_graph(20, 100, rng=6)
        with pytest.raises(WorkloadError):
            check_spanning_forest(g, np.arange(g.m))  # all edges: cycles

    def test_rejects_duplicates(self):
        g = random_graph(20, 50, rng=7)
        with pytest.raises(WorkloadError):
            check_spanning_forest(g, np.array([0, 0]))

    def test_rejects_out_of_range(self):
        g = random_graph(10, 20, rng=8)
        with pytest.raises(WorkloadError):
            check_spanning_forest(g, np.array([99]))

    def test_rejects_incomplete(self):
        g = random_graph(50, 200, rng=9)
        sf = spanning_forest(g)
        if sf.n_edges > 1:
            with pytest.raises(WorkloadError):
                check_spanning_forest(g, sf.edge_ids[:-1])
