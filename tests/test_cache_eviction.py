"""Tests for the sweep cache's size/entry caps and LRU eviction."""

import os

import pytest

from repro.cli import main
from repro.core import SweepCache
from repro.errors import ConfigurationError


def _fill(cache, count, start=0, size=0):
    """Store ``count`` records with strictly increasing mtimes."""
    pad = "x" * size
    for i in range(start, start + count):
        key = f"{i:02x}" + "0" * 62
        cache.put(key, {"i": i, "pad": pad})
        # decouple LRU order from filesystem timestamp resolution
        os.utime(cache._path(key), (1_000_000 + i, 1_000_000 + i))
    return [f"{i:02x}" + "0" * 62 for i in range(start, start + count)]


class TestEntryCap:
    def test_put_evicts_oldest_beyond_cap(self, tmp_path):
        cache = SweepCache(tmp_path, max_entries=3)
        keys = _fill(cache, 3)
        newest = "aa" + "0" * 62
        cache.put(newest, {"i": 99})
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(newest) == {"i": 99}
        assert cache.evictions == 1

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = SweepCache(tmp_path)
        _fill(cache, 10)
        assert len(cache.entries()) == 10
        assert cache.evictions == 0

    def test_get_refreshes_recency(self, tmp_path):
        cache = SweepCache(tmp_path, max_entries=3)
        keys = _fill(cache, 3)
        assert cache.get(keys[0]) is not None  # touch: now most recent
        cache.put("bb" + "0" * 62, {"i": 99})
        assert cache.get(keys[0]) is not None  # survived
        assert cache.get(keys[1]) is None  # true LRU went instead

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepCache(tmp_path, max_entries=-1)
        with pytest.raises(ConfigurationError):
            SweepCache(tmp_path, max_bytes=-5)


class TestByteCap:
    def test_evicts_down_to_byte_budget(self, tmp_path):
        cache = SweepCache(tmp_path)
        _fill(cache, 6, size=200)
        per_record = cache.entries()[0][2]
        capped = SweepCache(tmp_path, max_bytes=3 * per_record)
        evicted, freed = capped.prune()
        assert evicted == 3
        assert freed == 3 * per_record
        assert capped.size_bytes() <= 3 * per_record

    def test_oldest_go_first(self, tmp_path):
        cache = SweepCache(tmp_path)
        keys = _fill(cache, 4, size=100)
        per_record = cache.entries()[0][2]
        SweepCache(tmp_path, max_bytes=2 * per_record).prune()
        assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
        assert cache.get(keys[2]) is not None and cache.get(keys[3]) is not None


class TestPrune:
    def test_prune_without_caps_is_noop(self, tmp_path):
        cache = SweepCache(tmp_path)
        _fill(cache, 4)
        assert cache.prune() == (0, 0)
        assert len(cache.entries()) == 4

    def test_explicit_args_override_instance_caps(self, tmp_path):
        cache = SweepCache(tmp_path)
        _fill(cache, 5)
        evicted, _ = cache.prune(max_entries=2)
        assert evicted == 3
        assert len(cache.entries()) == 2

    def test_prune_to_zero_clears(self, tmp_path):
        cache = SweepCache(tmp_path)
        _fill(cache, 3)
        evicted, _ = cache.prune(max_entries=0)
        assert evicted == 3
        assert cache.entries() == []

    def test_stats_line_reports_evictions(self, tmp_path):
        cache = SweepCache(tmp_path, max_entries=1)
        _fill(cache, 2)
        assert "evicted" in cache.stats_line()
        fresh = SweepCache(tmp_path)
        assert "evicted" not in fresh.stats_line()


class TestCacheCli:
    def test_stats_only(self, tmp_path, capsys):
        cache = SweepCache(tmp_path)
        _fill(cache, 3)
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out

    def test_prune_with_cap(self, tmp_path, capsys):
        _fill(SweepCache(tmp_path), 5)
        assert main(
            ["cache", "--cache-dir", str(tmp_path), "--prune", "--max-entries", "2"]
        ) == 0
        assert "pruned 3 record(s)" in capsys.readouterr().out
        assert len(SweepCache(tmp_path).entries()) == 2

    def test_prune_without_caps_clears(self, tmp_path, capsys):
        _fill(SweepCache(tmp_path), 4)
        assert main(["cache", "--cache-dir", str(tmp_path), "--prune"]) == 0
        assert "pruned 4 record(s)" in capsys.readouterr().out
        assert SweepCache(tmp_path).entries() == []

    def test_caps_without_prune_do_nothing(self, tmp_path, capsys):
        _fill(SweepCache(tmp_path), 4)
        assert main(
            ["cache", "--cache-dir", str(tmp_path), "--max-entries", "1"]
        ) == 0
        assert "nothing evicted" in capsys.readouterr().out
        assert len(SweepCache(tmp_path).entries()) == 4
